// Package fault provides the filesystem seam under the durability
// layer: an FS interface covering every file operation the WAL,
// segment and checkpoint code perform, a passthrough OS implementation,
// and a deterministic programmable fault injector (InjectFS) that
// executes seeded fault plans — fail-the-Nth-op, per-op-class
// probability, one-shot and sticky EIO/ENOSPC, short (torn) writes,
// fsyncs that lie, injected latency — in the spirit of the errorfs
// harnesses production stores use to validate crash recovery and
// graceful degradation.
//
// Production code paths always run against OS (a zero-cost passthrough
// to the os package); tests and the chaos workload swap in an InjectFS
// built from a Plan. Plans are either constructed directly from Rule
// values or parsed from the compact textual grammar (see ParsePlan):
//
//	wal-*.log:write:after=3:err=ENOSPC:short; sync:p=0.05:sticky:err=EIO
package fault

import (
	"io"
	"os"
)

// File is the per-file surface the durability layer uses: the subset
// of *os.File the WAL and segment writers touch, so a fault injector
// can interpose on every byte that claims to be durable.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Seek repositions the read/write offset.
	Seek(offset int64, whence int) (int64, error)
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
}

// FS is the filesystem the durability layer performs all I/O through.
// OS is the passthrough production implementation; InjectFS executes
// fault plans for tests and chaos runs.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a new temporary file in dir (os.CreateTemp
	// semantics: pattern's "*" is replaced by a random string).
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile reads the whole file at name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the file at name.
	Remove(name string) error
	// MkdirAll creates a directory path and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists a directory, sorted by filename.
	ReadDir(name string) ([]os.DirEntry, error)
	// Stat describes the file at name.
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs a directory so renames and creations inside it
	// are durable.
	SyncDir(dir string) error
}

// OS is the passthrough FS: every call delegates straight to the os
// package. It is the default everywhere an FS is optional.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Or returns fsys when non-nil and the OS passthrough otherwise — the
// idiom every FS-threaded constructor uses to default its parameter.
func Or(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}
