package fault

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"

	"nlexplain/internal/metric"
)

// Op classifies filesystem operations for rule matching and counting.
type Op string

// The op classes a Rule can target. OpAny matches every class.
const (
	OpOpen   Op = "open"   // OpenFile, CreateTemp
	OpRead   Op = "read"   // ReadFile, File.Read
	OpWrite  Op = "write"  // File.Write
	OpSync   Op = "sync"   // File.Sync, SyncDir
	OpRename Op = "rename" // Rename
	OpRemove Op = "remove" // Remove
	OpMeta   Op = "meta"   // ReadDir, Stat, MkdirAll
	OpAny    Op = "any"
)

// Ops lists every concrete op class, in stable order (for stats and
// metric registration).
var Ops = []Op{OpOpen, OpRead, OpWrite, OpSync, OpRename, OpRemove, OpMeta}

// Sticky marks a Rule that keeps firing until the plan is replaced or
// healed (a persistently failed disk, not a transient hiccup).
const Sticky = -1

// Rule is one entry of a fault plan: when a filesystem operation
// matches the rule's op class and path glob, the rule decides — after
// skipping AfterN matches, with probability Prob, at most Count times —
// to inject its fault.
type Rule struct {
	// Op is the op class the rule applies to (OpAny = all).
	Op Op
	// Path is a filepath.Match glob tested against the operation's
	// base filename ("" matches everything). Rename and SyncDir match
	// on the destination / directory base name respectively.
	Path string
	// AfterN skips the first N matching operations; the rule arms on
	// the N+1th (fail-the-Nth-op schedules).
	AfterN int
	// Prob is the probability a matching armed operation faults;
	// 0 means always (probability 1).
	Prob float64
	// Count bounds how many times the rule fires: 0 means one-shot,
	// Sticky (-1) means it never exhausts.
	Count int
	// Err is the injected error; nil selects syscall.EIO. Writes
	// typically inject syscall.ENOSPC.
	Err error
	// ShortWrite makes a faulted write persist roughly half the buffer
	// before returning the error — a torn write, the crash shape WAL
	// recovery must truncate away.
	ShortWrite bool
	// SilentSync makes a faulted sync return success WITHOUT syncing
	// (an fsync that lies). No error is observable; the damage shows
	// up only if the process dies before a later honest sync.
	SilentSync bool
	// Latency is injected before the operation proceeds (fault or
	// not), modeling a slow device. Applied on every match once armed.
	Latency time.Duration

	seen  int // matching ops observed (drives AfterN)
	fired int // faults injected (drives Count)
}

// clone returns a fresh copy with zeroed progress counters.
func (r *Rule) clone() *Rule {
	c := *r
	c.seen, c.fired = 0, 0
	return &c
}

func (r *Rule) matches(op Op, base string) bool {
	if r.Op != "" && r.Op != OpAny && r.Op != op {
		return false
	}
	if r.Path != "" {
		ok, err := filepath.Match(r.Path, base)
		if err != nil || !ok {
			return false
		}
	}
	return true
}

func (r *Rule) errOr() error {
	if r.Err != nil {
		return r.Err
	}
	return syscall.EIO
}

// Stats is a point-in-time snapshot of an InjectFS's counters.
type Stats struct {
	// Ops counts the operations observed per class (faulted or not).
	Ops map[Op]uint64
	// Faults counts the faults injected per class. Silent syncs count
	// as faults even though the caller saw no error.
	Faults map[Op]uint64
}

// Total sums the injected faults across every class.
func (s Stats) Total() uint64 {
	var n uint64
	for _, v := range s.Faults {
		n += v
	}
	return n
}

// InjectFS wraps an inner FS and executes a fault plan against it.
// Rule evaluation is deterministic for a fixed seed and operation
// sequence; the zero plan (no rules) is a pure passthrough. Safe for
// concurrent use.
type InjectFS struct {
	inner FS

	mu     sync.Mutex
	rng    *rand.Rand
	rules  []*Rule
	ops    map[Op]uint64
	faults map[Op]uint64
}

// NewInject builds an InjectFS over inner with the given seeded plan.
// The rules are cloned, so a plan can be re-armed across runs without
// carrying progress counters over.
func NewInject(inner FS, seed int64, rules ...*Rule) *InjectFS {
	f := &InjectFS{
		inner:  Or(inner),
		rng:    rand.New(rand.NewSource(seed)),
		ops:    make(map[Op]uint64),
		faults: make(map[Op]uint64),
	}
	f.SetRules(rules...)
	return f
}

// SetRules replaces the active plan (progress counters reset).
func (f *InjectFS) SetRules(rules ...*Rule) {
	cloned := make([]*Rule, len(rules))
	for i, r := range rules {
		cloned[i] = r.clone()
	}
	f.mu.Lock()
	f.rules = cloned
	f.mu.Unlock()
}

// Heal drops every rule: the filesystem behaves perfectly again (the
// fault and op counters are kept).
func (f *InjectFS) Heal() { f.SetRules() }

// Stats snapshots the per-class op and fault counters.
func (f *InjectFS) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := Stats{Ops: make(map[Op]uint64, len(f.ops)), Faults: make(map[Op]uint64, len(f.faults))}
	for k, v := range f.ops {
		s.Ops[k] = v
	}
	for k, v := range f.faults {
		s.Faults[k] = v
	}
	return s
}

// RegisterMetrics hangs the injector's per-op-class counters off a
// metric registry: ops.<class> operations observed and
// injected.<class> faults delivered.
func (f *InjectFS) RegisterMetrics(r *metric.Registry) {
	for _, op := range Ops {
		op := op
		r.CounterFunc("ops."+string(op), fmt.Sprintf("%s operations observed by the fault injector", op), func() uint64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return f.ops[op]
		})
		r.CounterFunc("injected."+string(op), fmt.Sprintf("%s faults injected", op), func() uint64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return f.faults[op]
		})
	}
}

// decision is the outcome of evaluating the plan for one operation.
type decision struct {
	err     error
	short   bool
	silent  bool
	latency time.Duration
}

// check books one operation against the plan and returns the injection
// decision (zero value = proceed normally). The first rule that fires
// wins; latency from any armed matching rule accumulates.
func (f *InjectFS) check(op Op, name string) decision {
	base := filepath.Base(name)
	f.mu.Lock()
	f.ops[op]++
	var d decision
	for _, r := range f.rules {
		if !r.matches(op, base) {
			continue
		}
		r.seen++
		if r.seen <= r.AfterN {
			continue
		}
		if r.Latency > 0 {
			d.latency += r.Latency
		}
		if d.err != nil || d.silent {
			continue // a fault already chosen; latency still accumulates
		}
		if r.Count != Sticky && r.fired > r.Count {
			continue // exhausted (Count 0 = one shot)
		}
		if r.Prob > 0 && f.rng.Float64() >= r.Prob {
			continue
		}
		r.fired++
		f.faults[op]++
		if r.SilentSync && op == OpSync {
			d.silent = true
			continue
		}
		d.err = r.errOr()
		d.short = r.ShortWrite
	}
	f.mu.Unlock()
	if d.latency > 0 {
		time.Sleep(d.latency)
	}
	return d
}

// OpenFile implements FS.
func (f *InjectFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if d := f.check(OpOpen, name); d.err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: d.err}
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectFile{File: inner, fs: f}, nil
}

// CreateTemp implements FS.
func (f *InjectFS) CreateTemp(dir, pattern string) (File, error) {
	if d := f.check(OpOpen, filepath.Join(dir, pattern)); d.err != nil {
		return nil, &os.PathError{Op: "createtemp", Path: pattern, Err: d.err}
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injectFile{File: inner, fs: f}, nil
}

// ReadFile implements FS.
func (f *InjectFS) ReadFile(name string) ([]byte, error) {
	if d := f.check(OpRead, name); d.err != nil {
		return nil, &os.PathError{Op: "read", Path: name, Err: d.err}
	}
	return f.inner.ReadFile(name)
}

// Rename implements FS.
func (f *InjectFS) Rename(oldpath, newpath string) error {
	if d := f.check(OpRename, newpath); d.err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: d.err}
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *InjectFS) Remove(name string) error {
	if d := f.check(OpRemove, name); d.err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: d.err}
	}
	return f.inner.Remove(name)
}

// MkdirAll implements FS.
func (f *InjectFS) MkdirAll(path string, perm os.FileMode) error {
	if d := f.check(OpMeta, path); d.err != nil {
		return &os.PathError{Op: "mkdir", Path: path, Err: d.err}
	}
	return f.inner.MkdirAll(path, perm)
}

// ReadDir implements FS.
func (f *InjectFS) ReadDir(name string) ([]os.DirEntry, error) {
	if d := f.check(OpMeta, name); d.err != nil {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: d.err}
	}
	return f.inner.ReadDir(name)
}

// Stat implements FS.
func (f *InjectFS) Stat(name string) (os.FileInfo, error) {
	if d := f.check(OpMeta, name); d.err != nil {
		return nil, &os.PathError{Op: "stat", Path: name, Err: d.err}
	}
	return f.inner.Stat(name)
}

// SyncDir implements FS.
func (f *InjectFS) SyncDir(dir string) error {
	d := f.check(OpSync, dir)
	if d.silent {
		return nil
	}
	if d.err != nil {
		return &os.PathError{Op: "syncdir", Path: dir, Err: d.err}
	}
	return f.inner.SyncDir(dir)
}

// injectFile threads per-file reads, writes and syncs back through the
// owning injector's plan.
type injectFile struct {
	File
	fs *InjectFS
}

func (g *injectFile) Read(p []byte) (int, error) {
	if d := g.fs.check(OpRead, g.Name()); d.err != nil {
		return 0, &os.PathError{Op: "read", Path: g.Name(), Err: d.err}
	}
	return g.File.Read(p)
}

func (g *injectFile) Write(p []byte) (int, error) {
	d := g.fs.check(OpWrite, g.Name())
	if d.err == nil {
		return g.File.Write(p)
	}
	perr := &os.PathError{Op: "write", Path: g.Name(), Err: d.err}
	if !d.short || len(p) == 0 {
		return 0, perr
	}
	// Torn write: half the buffer lands before the device gives up.
	n, werr := g.File.Write(p[:(len(p)+1)/2])
	if werr != nil {
		return n, werr
	}
	return n, perr
}

func (g *injectFile) Sync() error {
	d := g.fs.check(OpSync, g.Name())
	if d.silent {
		return nil // the lie: report durable without flushing
	}
	if d.err != nil {
		return &os.PathError{Op: "sync", Path: g.Name(), Err: d.err}
	}
	return g.File.Sync()
}

// String renders the plan's rule list, for logs and test failures.
func (f *InjectFS) String() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.rules) == 0 {
		return "fault: no rules (passthrough)"
	}
	parts := make([]string, 0, len(f.rules))
	for _, r := range f.rules {
		parts = append(parts, r.String())
	}
	sort.Strings(parts)
	return "fault: " + fmt.Sprint(parts)
}

// String renders one rule in (approximately) the plan grammar.
func (r *Rule) String() string {
	s := string(r.Op)
	if r.Op == "" {
		s = string(OpAny)
	}
	if r.Path != "" {
		s = r.Path + ":" + s
	}
	if r.AfterN > 0 {
		s += fmt.Sprintf(":after=%d", r.AfterN)
	}
	if r.Prob > 0 {
		s += fmt.Sprintf(":p=%g", r.Prob)
	}
	if r.Count == Sticky {
		s += ":sticky"
	} else if r.Count > 0 {
		s += fmt.Sprintf(":count=%d", r.Count)
	}
	if r.Err != nil {
		s += ":err=" + errName(r.Err)
	}
	if r.ShortWrite {
		s += ":short"
	}
	if r.SilentSync {
		s += ":lie"
	}
	if r.Latency > 0 {
		s += ":latency=" + r.Latency.String()
	}
	return s
}

func errName(err error) string {
	switch err {
	case syscall.EIO:
		return "EIO"
	case syscall.ENOSPC:
		return "ENOSPC"
	default:
		return err.Error()
	}
}
