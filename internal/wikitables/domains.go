// Package wikitables generates a synthetic stand-in for the
// WikiTableQuestions benchmark (Pasupat & Liang 2015) used throughout
// the paper's evaluation: thousands of NL questions over web tables
// drawn from many domains, requiring lookup, aggregation, superlatives,
// arithmetic, set operations and positional reasoning (Table 1).
//
// The substitution (documented in DESIGN.md) preserves the axes the
// paper's claims depend on: per-question gold lambda DCS queries and
// answers, operator-class coverage matching Tables 1/8, linguistic
// variation including phrasings that defeat the parser's lexical
// triggers (so the parser has a realistic error profile), and a
// train/test split with disjoint tables (Section 6.1: "the separation
// between tables in the training and test sets forces the question
// answering system to handle new tables with previously unseen relations
// and entities").
package wikitables

import (
	"fmt"
	"math/rand"
	"strconv"

	"nlexplain/internal/table"
)

// ColumnKind drives value generation for a column.
type ColumnKind int

// Column kinds.
const (
	KindSeq ColumnKind = iota // 1, 2, 3, …
	KindYear
	KindSmallNum // 0-30
	KindBigNum   // 1,000-9,999
	KindName
	KindNation
	KindCity
	KindTeam
	KindTitle
	KindRound
	KindPosition
	KindSurface
	KindLake
	KindVessel
)

// ColumnSpec is a named, typed column of a domain schema.
type ColumnSpec struct {
	Name string
	Kind ColumnKind
}

// Domain is a table schema modeled after the WikiTableQuestions domains
// shown in Tables 1 and 8 of the paper.
type Domain struct {
	Name    string
	Columns []ColumnSpec
	// RowNoun is the natural phrase for one record ("olympiad",
	// "episode"), used by question templates.
	RowNoun string
}

// Domains lists the ten built-in schemas.
var Domains = []Domain{
	{Name: "olympics", RowNoun: "games", Columns: []ColumnSpec{
		{"Year", KindYear}, {"Country", KindNation}, {"City", KindCity}, {"Athletes", KindBigNum}}},
	{Name: "medals", RowNoun: "nation", Columns: []ColumnSpec{
		{"Rank", KindSeq}, {"Nation", KindNation}, {"Gold", KindSmallNum}, {"Silver", KindSmallNum}, {"Bronze", KindSmallNum}, {"Total", KindSmallNum}}},
	{Name: "episodes", RowNoun: "episode", Columns: []ColumnSpec{
		{"No", KindSeq}, {"Episode", KindTitle}, {"Year", KindYear}, {"Rating", KindSmallNum}, {"Viewers", KindBigNum}}},
	{Name: "racing", RowNoun: "driver", Columns: []ColumnSpec{
		{"No", KindSeq}, {"Driver", KindName}, {"Team", KindTeam}, {"Laps", KindSmallNum}, {"Points", KindSmallNum}}},
	{Name: "festivals", RowNoun: "festival", Columns: []ColumnSpec{
		{"Year", KindYear}, {"Festival", KindTitle}, {"Location", KindCity}, {"Awards", KindSmallNum}}},
	{Name: "tennis", RowNoun: "championship", Columns: []ColumnSpec{
		{"Year", KindYear}, {"Category", KindRound}, {"Surface", KindSurface}, {"Opponent", KindName}, {"Score", KindSmallNum}}},
	{Name: "players", RowNoun: "player", Columns: []ColumnSpec{
		{"Name", KindName}, {"Position", KindPosition}, {"Games", KindSmallNum}, {"Club", KindTeam}}},
	{Name: "shipwrecks", RowNoun: "ship", Columns: []ColumnSpec{
		{"Ship", KindTitle}, {"Vessel", KindVessel}, {"Lake", KindLake}, {"Lives", KindSmallNum}}},
	{Name: "cities", RowNoun: "city", Columns: []ColumnSpec{
		{"City", KindCity}, {"Country", KindNation}, {"Population", KindBigNum}, {"Area", KindSmallNum}}},
	{Name: "albums", RowNoun: "album", Columns: []ColumnSpec{
		{"Album", KindTitle}, {"Artist", KindName}, {"Year", KindYear}, {"Sales", KindBigNum}}},
}

var (
	firstNames = []string{"Jeff", "Luigi", "Louis", "Gabriel", "Mauricio", "Tatiana", "Myriam", "Erich", "Andy", "Marcel", "Heinz", "Lucien", "Roger", "Charly", "Beat", "Rene"}
	lastNames  = []string{"Lastennet", "Arcangeli", "Chiron", "Gervais", "Vincello", "Abramenko", "Asfry", "Burgener", "Egli", "Koller", "Hermann", "Favre", "Wehrli", "Berbig", "Rietmann", "Botteron"}
	nations    = []string{"Greece", "France", "China", "Brazil", "Fiji", "Tonga", "Samoa", "Nauru", "Tahiti", "Haiti", "Spain", "Madagascar", "Kenya", "Norway", "Chile", "Canada"}
	cities     = []string{"Athens", "Paris", "Beijing", "London", "Sydney", "Tokyo", "Rome", "Oslo", "Nairobi", "Santiago", "Suva", "Apia", "Montreal", "Moscow", "Seoul", "Helsinki"}
	teams      = []string{"Penske", "Servette", "Grasshoppers", "Toulouse", "Ferrari", "McLaren", "Williams", "Lotus", "Tyrrell", "Brabham", "Honda", "Matra"}
	titleWords = []string{"Silver", "Golden", "Hidden", "Broken", "Rising", "Falling", "Distant", "Frozen", "Burning", "Silent", "Crimson", "Emerald"}
	titleNouns = []string{"Dawn", "River", "Harbor", "Summit", "Valley", "Empire", "Voyage", "Garden", "Signal", "Horizon", "Anthem", "Mirror"}
	rounds     = []string{"1st Round", "2nd Round", "3rd Round", "4th Round", "Quarterfinal", "Semifinal", "Final", "Did not qualify"}
	positions  = []string{"GK", "DF", "MF", "FW"}
	surfaces   = []string{"Clay", "Grass", "Hard", "Carpet"}
	lakes      = []string{"Lake Huron", "Lake Erie", "Lake Michigan", "Lake Superior", "Lake Ontario"}
	vessels    = []string{"Steamer", "Barge", "Schooner", "Lightship", "Yacht", "Tug"}
)

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

// genValue produces one raw cell text for a column kind.
func genValue(rng *rand.Rand, k ColumnKind, row int) string {
	switch k {
	case KindSeq:
		return strconv.Itoa(row + 1)
	case KindYear:
		return strconv.Itoa(1948 + 4*row + rng.Intn(2))
	case KindSmallNum:
		return strconv.Itoa(rng.Intn(31))
	case KindBigNum:
		return strconv.Itoa(1000 + rng.Intn(9000))
	case KindName:
		return pick(rng, firstNames) + " " + pick(rng, lastNames)
	case KindNation:
		return pick(rng, nations)
	case KindCity:
		return pick(rng, cities)
	case KindTeam:
		return pick(rng, teams)
	case KindTitle:
		return pick(rng, titleWords) + " " + pick(rng, titleNouns)
	case KindRound:
		return pick(rng, rounds)
	case KindPosition:
		return pick(rng, positions)
	case KindSurface:
		return pick(rng, surfaces)
	case KindLake:
		return pick(rng, lakes)
	case KindVessel:
		return pick(rng, vessels)
	}
	return "?"
}

// NumericKind reports whether a column kind produces numbers.
func NumericKind(k ColumnKind) bool {
	switch k {
	case KindSeq, KindYear, KindSmallNum, KindBigNum:
		return true
	}
	return false
}

// GenTable builds a random table for a domain: 8-16 rows, matching the
// WikiTableQuestions selection criterion of at least 8 rows.
func GenTable(rng *rand.Rand, d Domain, id int) *table.Table {
	rows := 8 + rng.Intn(9)
	cols := make([]string, len(d.Columns))
	for i, c := range d.Columns {
		cols[i] = c.Name
	}
	var data [][]string
	for r := 0; r < rows; r++ {
		row := make([]string, len(d.Columns))
		for i, c := range d.Columns {
			row[i] = genValue(rng, c.Kind, r)
		}
		data = append(data, row)
	}
	t, err := table.New(fmt.Sprintf("%s-%d", d.Name, id), cols, data)
	if err != nil {
		panic(err) // unreachable: generated shapes are rectangular
	}
	return t
}
