package wikitables

import (
	"math/rand"
	"strings"

	"nlexplain/internal/dcs"
	"nlexplain/internal/semparse"
	"nlexplain/internal/table"
)

// Options configures dataset generation.
type Options struct {
	// Tables is the number of distinct tables to generate.
	Tables int
	// QuestionsPerTable is the number of questions written per table
	// (AMT workers wrote several trivia questions per table).
	QuestionsPerTable int
	// TestFraction of the tables (with their questions) becomes the
	// test set; the paper sets aside 20% of tables (Section 6.1).
	TestFraction float64
	// Hardness is the probability that a question is obfuscated the way
	// crowd questions are: entities referred to by a fragment of the
	// cell text ("Huron" for "Lake Huron") and trigger words replaced by
	// out-of-lexicon synonyms. Obfuscated questions often make the gold
	// query unreachable for the candidate generator, which is what
	// produces the paper's 56% top-k correctness bound (Section 7.2).
	Hardness float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultOptions gives a medium-sized dataset whose difficulty is
// calibrated so a trained parser lands near the paper's operating point
// (correctness ≈ 37%, top-7 bound ≈ 56%, Table 6).
func DefaultOptions() Options {
	return Options{Tables: 120, QuestionsPerTable: 10, TestFraction: 0.2, Hardness: 0.55, Seed: 2019}
}

// Dataset is a generated benchmark with the paper's table-disjoint split.
type Dataset struct {
	Train []*semparse.Example
	Test  []*semparse.Example
	// TrainTables and TestTables are the disjoint table pools.
	TrainTables []*table.Table
	TestTables  []*table.Table
}

// Generate builds a synthetic WikiTableQuestions-style dataset.
func Generate(opt Options) *Dataset {
	rng := rand.New(rand.NewSource(opt.Seed))
	ds := &Dataset{}
	nTest := int(float64(opt.Tables) * opt.TestFraction)
	id := 0
	for ti := 0; ti < opt.Tables; ti++ {
		d := Domains[ti%len(Domains)]
		t := GenTable(rng, d, ti)
		isTest := ti < nTest
		if isTest {
			ds.TestTables = append(ds.TestTables, t)
		} else {
			ds.TrainTables = append(ds.TrainTables, t)
		}
		for qi := 0; qi < opt.QuestionsPerTable; qi++ {
			ex, ok := genExample(rng, t, d, id)
			if !ok {
				continue
			}
			if rng.Float64() < opt.Hardness {
				ex.Question = obfuscate(rng, ex.Question)
			}
			id++
			if isTest {
				ds.Test = append(ds.Test, ex)
			} else {
				ds.Train = append(ds.Train, ex)
			}
		}
	}
	return ds
}

// obfuscate rewrites a question the way crowd workers paraphrase:
// multi-word entity mentions lose their leading word ("Lake Huron" →
// "Huron", "Jeff Lastennet" → "Lastennet") and common trigger words are
// replaced with synonyms outside the parser's lexicon. The gold query
// and answer stay unchanged — only the surface form gets harder.
func obfuscate(rng *rand.Rand, q string) string {
	words := strings.Fields(q)
	// Corrupt one entity mention: drop the first word of a capitalized
	// run ("Lake Huron" -> "Huron"), or typo a lone capitalized word
	// ("Greece" -> "Grecee"), the way crowd workers misquote cell text.
	// Entities sit late in the question; column mentions early. Corrupt
	// the last capitalized run so the grounding that breaks is usually
	// the entity the gold query needs.
	for i := len(words) - 1; i >= 1; i-- {
		if !isCapitalized(words[i]) {
			continue
		}
		if i-1 >= 1 && isCapitalized(words[i-1]) {
			words = append(words[:i-1], words[i:]...)
		} else {
			words[i] = typo(rng, words[i])
		}
		break
	}
	q = strings.Join(words, " ")
	// Synonym swaps outside the trigger lexicon.
	swaps := [][2]string{
		{"how many", "what quantity of"},
		{"difference", "gap"},
		{"highest", "peak"},
		{"lowest", "floor"},
		{"the most", "predominantly"},
		{"average", "typical"},
		{"total", "overall"},
		{"more than", "exceeding"},
		{"less than", "short of"},
		{"last", "closing"},
		{"first", "opening"},
	}
	for _, s := range swaps {
		if strings.Contains(q, s[0]) && rng.Intn(4) > 0 {
			q = strings.Replace(q, s[0], s[1], 1)
		}
	}
	return q
}

func isCapitalized(w string) bool {
	return len(w) > 0 && w[0] >= 'A' && w[0] <= 'Z'
}

// typo swaps two adjacent interior letters of a word.
func typo(rng *rand.Rand, w string) string {
	if len(w) < 4 {
		return w
	}
	b := []byte(w)
	i := 1 + rng.Intn(len(b)-3)
	b[i], b[i+1] = b[i+1], b[i]
	return string(b)
}

// genExample draws templates until one grounds in the table with a
// well-defined, non-degenerate answer.
func genExample(rng *rand.Rand, t *table.Table, d Domain, id int) (*semparse.Example, bool) {
	for attempt := 0; attempt < 20; attempt++ {
		tmpl := templates[rng.Intn(len(templates))]
		q, gold, ok := tmpl.build(rng, t, d)
		if !ok {
			continue
		}
		res, err := dcs.ExecuteAnswer(gold, t)
		if err != nil || res.Empty() {
			continue
		}
		return &semparse.Example{
			ID:        id,
			Question:  q,
			Table:     t,
			Answer:    res.AnswerKey(),
			GoldQuery: gold.String(),
		}, true
	}
	return nil, false
}
