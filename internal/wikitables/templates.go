package wikitables

import (
	"fmt"
	"math/rand"

	"nlexplain/internal/dcs"
	"nlexplain/internal/table"
)

// questionTemplate builds one (NL question, gold lambda DCS query) pair
// grounded in a concrete table, or reports ok=false when the table
// cannot support it (e.g. no value with exactly one record).
type questionTemplate struct {
	name  string
	build func(rng *rand.Rand, t *table.Table, d Domain) (string, dcs.Expr, bool)
}

// phrasing pools: the first variants use the parser's trigger vocabulary;
// later ones are deliberately adversarial (synonyms outside the trigger
// lexicon), reproducing the linguistic variance of crowd-written
// questions that makes the baseline parser fail on a realistic fraction.

func lit(v table.Value) dcs.Expr { return &dcs.ValueLit{V: v} }

func join(col string, v table.Value) dcs.Expr {
	return &dcs.Join{Column: col, Arg: lit(v)}
}

// columnsOfKind returns indices of domain columns matching pred.
func columnsWhere(d Domain, pred func(ColumnKind) bool) []int {
	var out []int
	for i, c := range d.Columns {
		if pred(c.Kind) {
			out = append(out, i)
		}
	}
	return out
}

func textCols(d Domain) []int {
	return columnsWhere(d, func(k ColumnKind) bool { return !NumericKind(k) })
}
func numCols(d Domain) []int { return columnsWhere(d, NumericKind) }
func pickCol(rng *rand.Rand, cols []int) (int, bool) {
	if len(cols) == 0 {
		return 0, false
	}
	return cols[rng.Intn(len(cols))], true
}

// anyValue draws a distinct value of a column.
func anyValue(rng *rand.Rand, t *table.Table, col int) (table.Value, bool) {
	vals := t.DistinctColumnValues(col)
	if len(vals) == 0 {
		return table.Value{}, false
	}
	return vals[rng.Intn(len(vals))], true
}

// uniqueValue draws a value occurring in exactly one record (needed by
// value-difference questions, whose operands must be singletons).
func uniqueValue(rng *rand.Rand, t *table.Table, col int) (table.Value, bool) {
	var singles []table.Value
	for _, v := range t.DistinctColumnValues(col) {
		if len(t.RecordsWhere(col, v)) == 1 {
			singles = append(singles, v)
		}
	}
	if len(singles) == 0 {
		return table.Value{}, false
	}
	return singles[rng.Intn(len(singles))], true
}

// twoValues draws two distinct values of a column; unique selects
// single-record values only.
func twoValues(rng *rand.Rand, t *table.Table, col int, unique bool) (table.Value, table.Value, bool) {
	drawer := anyValue
	if unique {
		drawer = uniqueValue
	}
	a, ok := drawer(rng, t, col)
	if !ok {
		return table.Value{}, table.Value{}, false
	}
	for i := 0; i < 12; i++ {
		b, ok := drawer(rng, t, col)
		if ok && !b.Equal(a) {
			return a, b, true
		}
	}
	return table.Value{}, table.Value{}, false
}

func choosef(rng *rand.Rand, variants []string, args ...any) string {
	return fmt.Sprintf(variants[rng.Intn(len(variants))], args...)
}

var templates = []questionTemplate{
	{name: "lookup", build: func(rng *rand.Rand, t *table.Table, d Domain) (string, dcs.Expr, bool) {
		jc, ok := pickCol(rng, textCols(d))
		if !ok {
			return "", nil, false
		}
		pc := rng.Intn(t.NumCols())
		if pc == jc {
			pc = (pc + 1) % t.NumCols()
		}
		v, ok := anyValue(rng, t, jc)
		if !ok {
			return "", nil, false
		}
		q := choosef(rng, []string{
			"what is the %[1]s when %[2]s is %[3]s?",
			"which %[1]s has %[2]s %[3]s?",
			"what was the %[1]s for %[3]s?",
			"name the %[1]s of %[3]s.",
		}, t.Column(pc), t.Column(jc), v)
		return q, &dcs.ColumnValues{Column: t.Column(pc), Records: join(t.Column(jc), v)}, true
	}},

	{name: "count", build: func(rng *rand.Rand, t *table.Table, d Domain) (string, dcs.Expr, bool) {
		jc, ok := pickCol(rng, textCols(d))
		if !ok {
			return "", nil, false
		}
		v, ok := anyValue(rng, t, jc)
		if !ok {
			return "", nil, false
		}
		q := choosef(rng, []string{
			"how many rows have %[1]s %[2]s?",
			"what is the total number of %[3]ss where %[1]s is %[2]s?",
			"how many times does %[2]s appear in column %[1]s?",
			"tally the %[3]ss with %[1]s %[2]s.",
		}, t.Column(jc), v, d.RowNoun)
		return q, &dcs.Aggregate{Fn: dcs.Count, Arg: join(t.Column(jc), v)}, true
	}},

	{name: "sum", build: func(rng *rand.Rand, t *table.Table, d Domain) (string, dcs.Expr, bool) {
		nc, ok := pickCol(rng, numCols(d))
		if !ok {
			return "", nil, false
		}
		jc, ok := pickCol(rng, textCols(d))
		if !ok {
			return "", nil, false
		}
		v, ok := anyValue(rng, t, jc)
		if !ok {
			return "", nil, false
		}
		q := choosef(rng, []string{
			"what is the total %[1]s where %[2]s is %[3]s?",
			"what is the sum of %[1]s for %[3]s?",
			"add up the %[1]s of %[3]s.",
		}, t.Column(nc), t.Column(jc), v)
		return q, &dcs.Aggregate{Fn: dcs.Sum, Arg: &dcs.ColumnValues{Column: t.Column(nc), Records: join(t.Column(jc), v)}}, true
	}},

	{name: "avg", build: func(rng *rand.Rand, t *table.Table, d Domain) (string, dcs.Expr, bool) {
		nc, ok := pickCol(rng, numCols(d))
		if !ok {
			return "", nil, false
		}
		jc, ok := pickCol(rng, textCols(d))
		if !ok {
			return "", nil, false
		}
		v, ok := anyValue(rng, t, jc)
		if !ok {
			return "", nil, false
		}
		q := choosef(rng, []string{
			"what is the average %[1]s where %[2]s is %[3]s?",
			"what is the mean %[1]s for %[3]s?",
			"what %[1]s does %[3]s typically have?",
		}, t.Column(nc), t.Column(jc), v)
		return q, &dcs.Aggregate{Fn: dcs.Avg, Arg: &dcs.ColumnValues{Column: t.Column(nc), Records: join(t.Column(jc), v)}}, true
	}},

	{name: "max-scalar", build: func(rng *rand.Rand, t *table.Table, d Domain) (string, dcs.Expr, bool) {
		nc, ok := pickCol(rng, numCols(d))
		if !ok {
			return "", nil, false
		}
		jc, ok := pickCol(rng, textCols(d))
		if !ok {
			return "", nil, false
		}
		v, ok := anyValue(rng, t, jc)
		if !ok {
			return "", nil, false
		}
		maxSide := rng.Intn(2) == 0
		fn := dcs.Max
		adj := []string{
			"what is the highest %[1]s where %[2]s is %[3]s?",
			"what is the maximum %[1]s for %[3]s?",
			"what is the largest %[1]s recorded for %[3]s?",
		}
		if !maxSide {
			fn = dcs.Min
			adj = []string{
				"what is the lowest %[1]s where %[2]s is %[3]s?",
				"what is the minimum %[1]s for %[3]s?",
				"what is the smallest %[1]s recorded for %[3]s?",
			}
		}
		q := choosef(rng, adj, t.Column(nc), t.Column(jc), v)
		return q, &dcs.Aggregate{Fn: fn, Arg: &dcs.ColumnValues{Column: t.Column(nc), Records: join(t.Column(jc), v)}}, true
	}},

	{name: "argmax-records", build: func(rng *rand.Rand, t *table.Table, d Domain) (string, dcs.Expr, bool) {
		nc, ok := pickCol(rng, numCols(d))
		if !ok {
			return "", nil, false
		}
		pc, ok := pickCol(rng, textCols(d))
		if !ok || pc == nc {
			return "", nil, false
		}
		maxSide := rng.Intn(2) == 0
		var q string
		if maxSide {
			q = choosef(rng, []string{
				"which %[1]s has the highest %[2]s?",
				"which %[1]s has the most %[2]s?",
				"who tops the table on %[2]s?",
			}, t.Column(pc), t.Column(nc))
		} else {
			q = choosef(rng, []string{
				"which %[1]s has the lowest %[2]s?",
				"which %[1]s has the fewest %[2]s?",
				"who sits at the bottom on %[2]s?",
			}, t.Column(pc), t.Column(nc))
		}
		return q, &dcs.ColumnValues{Column: t.Column(pc), Records: &dcs.ArgRecords{Max: maxSide, Records: &dcs.AllRecords{}, Column: t.Column(nc)}}, true
	}},

	{name: "index-superlative", build: func(rng *rand.Rand, t *table.Table, d Domain) (string, dcs.Expr, bool) {
		jc, ok := pickCol(rng, textCols(d))
		if !ok {
			return "", nil, false
		}
		pc := rng.Intn(t.NumCols())
		if pc == jc {
			pc = (pc + 1) % t.NumCols()
		}
		v, ok := anyValue(rng, t, jc)
		if !ok {
			return "", nil, false
		}
		last := rng.Intn(2) == 0
		var q string
		if last {
			q = choosef(rng, []string{
				"what is the %[1]s in the last row where %[2]s is %[3]s?",
				"what was the final %[1]s listed for %[3]s?",
			}, t.Column(pc), t.Column(jc), v)
		} else {
			q = choosef(rng, []string{
				"what is the %[1]s in the first row where %[2]s is %[3]s?",
				"what was the earliest %[1]s listed for %[3]s?",
			}, t.Column(pc), t.Column(jc), v)
		}
		return q, &dcs.IndexSuperlative{Column: t.Column(pc), Records: join(t.Column(jc), v), First: !last}, true
	}},

	{name: "diff-values", build: func(rng *rand.Rand, t *table.Table, d Domain) (string, dcs.Expr, bool) {
		nc, ok := pickCol(rng, numCols(d))
		if !ok {
			return "", nil, false
		}
		jc, ok := pickCol(rng, textCols(d))
		if !ok {
			return "", nil, false
		}
		a, b, ok := twoValues(rng, t, jc, true)
		if !ok {
			return "", nil, false
		}
		q := choosef(rng, []string{
			"what is the difference in %[1]s between %[2]s and %[3]s?",
			"how much more %[1]s does %[2]s have than %[3]s?",
			"by how much does %[2]s exceed %[3]s in %[1]s?",
		}, t.Column(nc), a, b)
		return q, &dcs.Sub{
			L: &dcs.ColumnValues{Column: t.Column(nc), Records: join(t.Column(jc), a)},
			R: &dcs.ColumnValues{Column: t.Column(nc), Records: join(t.Column(jc), b)},
		}, true
	}},

	{name: "diff-counts", build: func(rng *rand.Rand, t *table.Table, d Domain) (string, dcs.Expr, bool) {
		jc, ok := pickCol(rng, textCols(d))
		if !ok {
			return "", nil, false
		}
		a, b, ok := twoValues(rng, t, jc, false)
		if !ok {
			return "", nil, false
		}
		q := choosef(rng, []string{
			"how many more rows have %[1]s %[2]s than %[3]s?",
			"what is the difference in appearances between %[2]s and %[3]s in column %[1]s?",
		}, t.Column(jc), a, b)
		return q, &dcs.Sub{
			L: &dcs.Aggregate{Fn: dcs.Count, Arg: join(t.Column(jc), a)},
			R: &dcs.Aggregate{Fn: dcs.Count, Arg: join(t.Column(jc), b)},
		}, true
	}},

	{name: "comparison", build: func(rng *rand.Rand, t *table.Table, d Domain) (string, dcs.Expr, bool) {
		nc, ok := pickCol(rng, numCols(d))
		if !ok {
			return "", nil, false
		}
		pc, ok := pickCol(rng, textCols(d))
		if !ok {
			return "", nil, false
		}
		col, _ := t.ColumnIndex(t.Column(nc))
		v, ok := anyValue(rng, t, col)
		if !ok || v.Kind != table.Number {
			return "", nil, false
		}
		more := rng.Intn(2) == 0
		op := dcs.Gt
		var q string
		if more {
			q = choosef(rng, []string{
				"which %[1]s have more than %[2]s %[3]s?",
				"which %[1]s scored over %[2]s in %[3]s?",
			}, t.Column(pc), v, t.Column(nc))
		} else {
			op = dcs.Lt
			q = choosef(rng, []string{
				"which %[1]s have less than %[2]s %[3]s?",
				"which %[1]s stayed under %[2]s in %[3]s?",
			}, t.Column(pc), v, t.Column(nc))
		}
		return q, &dcs.ColumnValues{Column: t.Column(pc), Records: &dcs.Compare{Column: t.Column(nc), Op: op, V: v}}, true
	}},

	{name: "prev-next", build: func(rng *rand.Rand, t *table.Table, d Domain) (string, dcs.Expr, bool) {
		jc, ok := pickCol(rng, textCols(d))
		if !ok {
			return "", nil, false
		}
		pc := rng.Intn(t.NumCols())
		if pc == jc {
			pc = (pc + 1) % t.NumCols()
		}
		v, ok := uniqueValue(rng, t, jc)
		if !ok {
			return "", nil, false
		}
		after := rng.Intn(2) == 0
		var q string
		var recs dcs.Expr
		if after {
			q = choosef(rng, []string{
				"what is the %[1]s right after the row where %[2]s is %[3]s?",
				"which %[1]s comes next after %[3]s?",
			}, t.Column(pc), t.Column(jc), v)
			recs = &dcs.Next{Records: join(t.Column(jc), v)}
		} else {
			q = choosef(rng, []string{
				"what is the %[1]s right before the row where %[2]s is %[3]s?",
				"which %[1]s comes just previous to %[3]s?",
			}, t.Column(pc), t.Column(jc), v)
			recs = &dcs.Prev{Records: join(t.Column(jc), v)}
		}
		return q, &dcs.ColumnValues{Column: t.Column(pc), Records: recs}, true
	}},

	{name: "intersect", build: func(rng *rand.Rand, t *table.Table, d Domain) (string, dcs.Expr, bool) {
		tcols := textCols(d)
		if len(tcols) < 2 {
			return "", nil, false
		}
		jc1 := tcols[rng.Intn(len(tcols))]
		jc2 := tcols[rng.Intn(len(tcols))]
		if jc1 == jc2 {
			return "", nil, false
		}
		pc := rng.Intn(t.NumCols())
		if pc == jc1 || pc == jc2 {
			return "", nil, false
		}
		// Draw a co-occurring pair so the intersection is non-empty.
		r := rng.Intn(t.NumRows())
		v1 := t.Value(r, jc1)
		v2 := t.Value(r, jc2)
		q := choosef(rng, []string{
			"what is the %[1]s where %[2]s is %[3]s and %[4]s is %[5]s?",
			"which %[1]s has both %[2]s %[3]s and %[4]s %[5]s?",
		}, t.Column(pc), t.Column(jc1), v1, t.Column(jc2), v2)
		return q, &dcs.ColumnValues{Column: t.Column(pc), Records: &dcs.Intersect{
			L: join(t.Column(jc1), v1), R: join(t.Column(jc2), v2)}}, true
	}},

	{name: "union-count", build: func(rng *rand.Rand, t *table.Table, d Domain) (string, dcs.Expr, bool) {
		jc, ok := pickCol(rng, textCols(d))
		if !ok {
			return "", nil, false
		}
		a, b, ok := twoValues(rng, t, jc, false)
		if !ok {
			return "", nil, false
		}
		q := choosef(rng, []string{
			"how many rows have %[1]s %[2]s or %[3]s?",
			"what is the number of %[4]ss where %[1]s is either %[2]s or %[3]s?",
		}, t.Column(jc), a, b, d.RowNoun)
		return q, &dcs.Aggregate{Fn: dcs.Count, Arg: &dcs.Union{
			L: join(t.Column(jc), a), R: join(t.Column(jc), b)}}, true
	}},

	{name: "most-frequent", build: func(rng *rand.Rand, t *table.Table, d Domain) (string, dcs.Expr, bool) {
		jc, ok := pickCol(rng, textCols(d))
		if !ok {
			return "", nil, false
		}
		q := choosef(rng, []string{
			"which %[1]s appears the most?",
			"which %[1]s was recorded the most?",
			"what is the most common %[1]s?",
		}, t.Column(jc))
		return q, &dcs.MostFrequent{Column: t.Column(jc)}, true
	}},

	{name: "compare-values", build: func(rng *rand.Rand, t *table.Table, d Domain) (string, dcs.Expr, bool) {
		nc, ok := pickCol(rng, numCols(d))
		if !ok {
			return "", nil, false
		}
		jc, ok := pickCol(rng, textCols(d))
		if !ok || jc == nc {
			return "", nil, false
		}
		a, b, ok := twoValues(rng, t, jc, true)
		if !ok {
			return "", nil, false
		}
		maxSide := rng.Intn(2) == 0
		var q string
		if maxSide {
			q = choosef(rng, []string{
				"who has the higher %[1]s, %[2]s or %[3]s?",
				"between %[2]s and %[3]s, which has more %[1]s?",
			}, t.Column(nc), a, b)
		} else {
			q = choosef(rng, []string{
				"who has the lower %[1]s, %[2]s or %[3]s?",
				"between %[2]s and %[3]s, which has less %[1]s?",
			}, t.Column(nc), a, b)
		}
		vals := &dcs.Union{L: lit(a), R: lit(b)}
		return q, &dcs.CompareValues{Max: maxSide, Vals: vals, KeyCol: t.Column(nc), ValCol: t.Column(jc)}, true
	}},
}

// TemplateNames lists the operator classes covered by the generator.
func TemplateNames() []string {
	out := make([]string, len(templates))
	for i, t := range templates {
		out[i] = t.name
	}
	return out
}
