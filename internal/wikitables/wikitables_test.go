package wikitables

import (
	"math/rand"
	"strings"
	"testing"

	"nlexplain/internal/dcs"
	"nlexplain/internal/semparse"
)

func TestGenTableShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range Domains {
		tab := GenTable(rng, d, 0)
		if tab.NumRows() < 8 {
			t.Errorf("%s: %d rows, want >= 8 (WikiTableQuestions criterion)", d.Name, tab.NumRows())
		}
		if tab.NumCols() != len(d.Columns) {
			t.Errorf("%s: %d cols, want %d", d.Name, tab.NumCols(), len(d.Columns))
		}
		for i, c := range d.Columns {
			if NumericKind(c.Kind) {
				v := tab.Value(0, i)
				if !v.IsNumeric() {
					t.Errorf("%s.%s: expected numeric values, got %v", d.Name, c.Name, v)
				}
			}
		}
	}
}

func TestEveryDomainHasTextAndNumericColumns(t *testing.T) {
	for _, d := range Domains {
		if len(textCols(d)) == 0 {
			t.Errorf("%s has no text columns", d.Name)
		}
		if len(numCols(d)) == 0 {
			t.Errorf("%s has no numeric columns", d.Name)
		}
	}
}

func TestTemplatesCoverOperatorClasses(t *testing.T) {
	names := strings.Join(TemplateNames(), ",")
	for _, want := range []string{
		"lookup", "count", "sum", "avg", "max-scalar", "argmax-records",
		"index-superlative", "diff-values", "diff-counts", "comparison",
		"prev-next", "intersect", "union-count", "most-frequent", "compare-values",
	} {
		if !strings.Contains(names, want) {
			t.Errorf("template %q missing (have %s)", want, names)
		}
	}
}

func TestTemplatesProduceValidGold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	built := make(map[string]int)
	for trial := 0; trial < 400; trial++ {
		d := Domains[rng.Intn(len(Domains))]
		tab := GenTable(rng, d, trial)
		tmpl := templates[rng.Intn(len(templates))]
		q, gold, ok := tmpl.build(rng, tab, d)
		if !ok {
			continue
		}
		built[tmpl.name]++
		if strings.TrimSpace(q) == "" {
			t.Errorf("%s produced empty question", tmpl.name)
		}
		if err := dcs.Check(gold, tab); err != nil {
			t.Errorf("%s gold query fails check: %v", tmpl.name, err)
		}
		// Gold must round-trip through the surface syntax (the dataset
		// stores canonical strings).
		re, err := dcs.Parse(gold.String())
		if err != nil {
			t.Errorf("%s gold %q does not re-parse: %v", tmpl.name, gold, err)
		} else if re.String() != gold.String() {
			t.Errorf("%s gold unstable round trip: %q vs %q", tmpl.name, gold, re)
		}
	}
	for _, tmpl := range templates {
		if built[tmpl.name] == 0 {
			t.Errorf("template %s never built in 400 trials", tmpl.name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	opt := Options{Tables: 10, QuestionsPerTable: 4, TestFraction: 0.2, Hardness: 0.5, Seed: 99}
	a := Generate(opt)
	b := Generate(opt)
	if len(a.Train) != len(b.Train) || len(a.Test) != len(b.Test) {
		t.Fatal("same seed produced different dataset sizes")
	}
	for i := range a.Train {
		if a.Train[i].Question != b.Train[i].Question || a.Train[i].GoldQuery != b.Train[i].GoldQuery {
			t.Fatalf("example %d differs between runs", i)
		}
	}
}

func TestGenerateSplitDisjointTables(t *testing.T) {
	ds := Generate(Options{Tables: 20, QuestionsPerTable: 3, TestFraction: 0.25, Seed: 5})
	trainNames := make(map[string]bool)
	for _, tab := range ds.TrainTables {
		trainNames[tab.Name()] = true
	}
	for _, tab := range ds.TestTables {
		if trainNames[tab.Name()] {
			t.Fatalf("table %s appears in both splits", tab.Name())
		}
	}
	for _, ex := range ds.Test {
		if trainNames[ex.Table.Name()] {
			t.Fatalf("test example %d uses a training table", ex.ID)
		}
	}
	wantTest := 5
	if len(ds.TestTables) != wantTest || len(ds.TrainTables) != 15 {
		t.Errorf("split = %d/%d tables", len(ds.TrainTables), len(ds.TestTables))
	}
}

func TestGenerateAnswersMatchGold(t *testing.T) {
	ds := Generate(Options{Tables: 12, QuestionsPerTable: 5, TestFraction: 0.2, Hardness: 1.0, Seed: 11})
	all := append(append([]*semparse.Example(nil), ds.Train...), ds.Test...)
	if len(all) < 40 {
		t.Fatalf("only %d examples generated", len(all))
	}
	for _, ex := range all {
		gold, err := dcs.Parse(ex.GoldQuery)
		if err != nil {
			t.Fatalf("example %d gold does not parse: %v", ex.ID, err)
		}
		res, err := dcs.Execute(gold, ex.Table)
		if err != nil {
			t.Fatalf("example %d gold does not execute: %v", ex.ID, err)
		}
		if res.AnswerKey() != ex.Answer {
			t.Errorf("example %d: stored answer %q, executed %q", ex.ID, ex.Answer, res.AnswerKey())
		}
		if res.Empty() {
			t.Errorf("example %d has an empty answer", ex.ID)
		}
	}
}

func TestObfuscateRemovesGrounding(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	changed := 0
	for i := 0; i < 50; i++ {
		q := "what is the difference in Gold between New Caledonia and Tonga?"
		o := obfuscate(rng, q)
		if o != q {
			changed++
		}
	}
	if changed < 25 {
		t.Errorf("obfuscate changed only %d/50 questions", changed)
	}
}

func TestTypo(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if got := typo(rng, "ab"); got != "ab" {
		t.Errorf("short words must not change: %q", got)
	}
	w := "Greece"
	diff := 0
	for i := 0; i < 20; i++ {
		if typo(rng, w) != w {
			diff++
		}
	}
	if diff == 0 {
		t.Error("typo never changed a 6-letter word in 20 tries")
	}
}
