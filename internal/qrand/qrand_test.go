package qrand

import (
	"math/rand"
	"testing"

	"nlexplain/internal/dcs"
)

func TestTableShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		tab := Table(rng)
		if tab.NumRows() < 2 || tab.NumCols() != 5 {
			t.Fatalf("table %dx%d", tab.NumRows(), tab.NumCols())
		}
	}
}

func TestGeneratedQueriesAreWellTyped(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		tab := Table(rng)
		for _, q := range []dcs.Expr{
			Records(rng, tab, 2),
			Values(rng, tab, 2),
			Scalar(rng, tab, 2),
			Query(rng, tab, 3),
		} {
			if err := dcs.Check(q, tab); err != nil {
				t.Fatalf("generated ill-typed query %s: %v", q, err)
			}
		}
	}
}

func TestGeneratedQueriesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		tab := Table(rng)
		q := Query(rng, tab, 2)
		printed := q.String()
		re, err := dcs.Parse(printed)
		if err != nil {
			t.Fatalf("generated query %q does not re-parse: %v", printed, err)
		}
		if re.String() != printed {
			t.Fatalf("round trip unstable: %q -> %q", printed, re.String())
		}
	}
}

func TestTypeDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	counts := map[dcs.Type]int{}
	for i := 0; i < 600; i++ {
		tab := Table(rng)
		counts[Query(rng, tab, 2).Type()]++
	}
	for _, typ := range []dcs.Type{dcs.RecordsType, dcs.ValuesType, dcs.ScalarType} {
		if counts[typ] < 100 {
			t.Errorf("type %v underrepresented: %d/600", typ, counts[typ])
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a := Query(rand.New(rand.NewSource(9)), Table(rand.New(rand.NewSource(8))), 3)
	b := Query(rand.New(rand.NewSource(9)), Table(rand.New(rand.NewSource(8))), 3)
	if a.String() != b.String() {
		t.Errorf("same seeds gave %q and %q", a, b)
	}
}
