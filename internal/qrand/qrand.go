// Package qrand generates random web tables and random well-typed lambda
// DCS queries over them. It backs the property-based tests of the
// repository: lambda DCS / SQL executor equivalence (sqlgen), the
// provenance chain invariant PO ⊆ PE ⊆ PC (provenance), and utterance
// totality (utterance).
package qrand

import (
	"fmt"
	"math/rand"
	"strconv"

	"nlexplain/internal/dcs"
	"nlexplain/internal/table"
)

var (
	nations = []string{"Greece", "France", "China", "UK", "Brazil", "Fiji", "Tonga", "Samoa", "Nauru", "Tahiti"}
	cities  = []string{"Athens", "Paris", "Beijing", "London", "Rio", "Suva", "Apia", "Sydney", "Tokyo", "Rome"}
	rounds  = []string{"1st Round", "2nd Round", "3rd Round", "4th Round", "Did not qualify", "Final"}
)

// Table builds a random table with text, numeric and category columns.
// Tables always have at least two rows and four columns, so every
// operator class has something to chew on.
func Table(rng *rand.Rand) *table.Table {
	rows := 2 + rng.Intn(12)
	var data [][]string
	for r := 0; r < rows; r++ {
		data = append(data, []string{
			nations[rng.Intn(len(nations))],
			cities[rng.Intn(len(cities))],
			strconv.Itoa(1890 + rng.Intn(40)*3),
			strconv.Itoa(rng.Intn(30)),
			rounds[rng.Intn(len(rounds))],
		})
	}
	t, err := table.New(fmt.Sprintf("rand%d", rng.Intn(1<<30)),
		[]string{"Nation", "City", "Year", "Games", "Result"}, data)
	if err != nil {
		panic(err) // unreachable: shapes are fixed
	}
	return t
}

// numericColumns of the generated table (usable by aggregates and
// superlatives without dynamic type errors).
var numericColumns = []string{"Year", "Games"}

// anyColumn of the generated table.
var anyColumns = []string{"Nation", "City", "Year", "Games", "Result"}

func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// cellValue draws a value that (usually) occurs in the column, with an
// occasional miss to exercise empty denotations.
func cellValue(rng *rand.Rand, t *table.Table, colName string) table.Value {
	if rng.Intn(8) == 0 {
		return table.StringValue("Atlantis")
	}
	col, _ := t.ColumnIndex(colName)
	r := rng.Intn(t.NumRows())
	return t.Value(r, col)
}

// Records generates a random RecordsType expression of bounded depth.
func Records(rng *rand.Rand, t *table.Table, depth int) dcs.Expr {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return &dcs.AllRecords{}
		case 1:
			c := pick(rng, anyColumns)
			return &dcs.Join{Column: c, Arg: &dcs.ValueLit{V: cellValue(rng, t, c)}}
		default:
			c := pick(rng, numericColumns)
			op := pick(rng, []dcs.CmpOp{dcs.Lt, dcs.Le, dcs.Gt, dcs.Ge, dcs.Ne})
			return &dcs.Compare{Column: c, Op: op, V: table.NumberValue(float64(rng.Intn(2000)))}
		}
	}
	switch rng.Intn(7) {
	case 0:
		return &dcs.Intersect{L: Records(rng, t, depth-1), R: Records(rng, t, depth-1)}
	case 1:
		return &dcs.Union{L: Records(rng, t, depth-1), R: Records(rng, t, depth-1)}
	case 2:
		return &dcs.Prev{Records: Records(rng, t, depth-1)}
	case 3:
		return &dcs.Next{Records: Records(rng, t, depth-1)}
	case 4:
		return &dcs.ArgRecords{Max: rng.Intn(2) == 0, Records: Records(rng, t, depth-1), Column: pick(rng, numericColumns)}
	case 5:
		c := pick(rng, anyColumns)
		arg := Values(rng, t, depth-1)
		return &dcs.Join{Column: c, Arg: arg}
	default:
		return Records(rng, t, 0)
	}
}

// Values generates a random ValuesType expression of bounded depth.
func Values(rng *rand.Rand, t *table.Table, depth int) dcs.Expr {
	if depth <= 0 {
		c := pick(rng, anyColumns)
		if rng.Intn(2) == 0 {
			return &dcs.ValueLit{V: cellValue(rng, t, c)}
		}
		return &dcs.ColumnValues{Column: c, Records: Records(rng, t, 0)}
	}
	switch rng.Intn(5) {
	case 0:
		return &dcs.ColumnValues{Column: pick(rng, anyColumns), Records: Records(rng, t, depth-1)}
	case 1:
		return &dcs.Union{L: Values(rng, t, depth-1), R: Values(rng, t, depth-1)}
	case 2:
		return &dcs.IndexSuperlative{Column: pick(rng, anyColumns), Records: Records(rng, t, depth-1), First: rng.Intn(2) == 0}
	case 3:
		c := pick(rng, anyColumns)
		if rng.Intn(3) == 0 {
			return &dcs.MostFrequent{Column: c}
		}
		return &dcs.MostFrequent{Vals: valueUnion(rng, t, c), Column: c}
	default:
		valCol := pick(rng, anyColumns)
		return &dcs.CompareValues{
			Max:    rng.Intn(2) == 0,
			Vals:   valueUnion(rng, t, valCol),
			KeyCol: pick(rng, numericColumns),
			ValCol: valCol,
		}
	}
}

// valueUnion builds a union of two literals drawn from a column.
func valueUnion(rng *rand.Rand, t *table.Table, colName string) dcs.Expr {
	return &dcs.Union{
		L: &dcs.ValueLit{V: cellValue(rng, t, colName)},
		R: &dcs.ValueLit{V: cellValue(rng, t, colName)},
	}
}

// Scalar generates a random ScalarType expression of bounded depth.
func Scalar(rng *rand.Rand, t *table.Table, depth int) dcs.Expr {
	switch rng.Intn(4) {
	case 0:
		return &dcs.Aggregate{Fn: dcs.Count, Arg: Records(rng, t, depth-1)}
	case 1:
		fn := pick(rng, []dcs.AggrFn{dcs.Min, dcs.Max, dcs.Sum, dcs.Avg, dcs.Count})
		return &dcs.Aggregate{Fn: fn, Arg: &dcs.ColumnValues{
			Column:  pick(rng, numericColumns),
			Records: Records(rng, t, depth-1),
		}}
	case 2:
		c1 := pick(rng, numericColumns)
		c2 := pick(rng, anyColumns)
		return &dcs.Sub{
			L: &dcs.ColumnValues{Column: c1, Records: &dcs.Join{Column: c2, Arg: &dcs.ValueLit{V: cellValue(rng, t, c2)}}},
			R: &dcs.ColumnValues{Column: c1, Records: &dcs.Join{Column: c2, Arg: &dcs.ValueLit{V: cellValue(rng, t, c2)}}},
		}
	default:
		c := pick(rng, anyColumns)
		return &dcs.Sub{
			L: &dcs.Aggregate{Fn: dcs.Count, Arg: &dcs.Join{Column: c, Arg: &dcs.ValueLit{V: cellValue(rng, t, c)}}},
			R: &dcs.Aggregate{Fn: dcs.Count, Arg: &dcs.Join{Column: c, Arg: &dcs.ValueLit{V: cellValue(rng, t, c)}}},
		}
	}
}

// Query generates a random query of any result type.
func Query(rng *rand.Rand, t *table.Table, depth int) dcs.Expr {
	switch rng.Intn(3) {
	case 0:
		return Records(rng, t, depth)
	case 1:
		return Values(rng, t, depth)
	default:
		return Scalar(rng, t, depth)
	}
}
