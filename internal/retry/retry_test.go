package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDelaySequence pins the deterministic (jitter disabled) backoff
// curve: Base·Factor^n capped at Max.
func TestDelaySequence(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Max: 5 * time.Second, Factor: 2, Jitter: -1}
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond,
		3200 * time.Millisecond, 5 * time.Second, 5 * time.Second, 5 * time.Second,
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

// TestDelayJitterBounds drives the jitter draw through its extremes
// and checks the delay stays inside [d·(1−J), min(d·(1+J), Max)].
func TestDelayJitterBounds(t *testing.T) {
	for _, draw := range []float64{0, 0.25, 0.5, 0.75, 0.999999} {
		b := Backoff{Base: 100 * time.Millisecond, Max: 5 * time.Second, Factor: 2, Jitter: 0.2,
			Rand: func() float64 { return draw }}
		for attempt := 0; attempt < 8; attempt++ {
			nominal := float64(100*time.Millisecond) * pow2(attempt)
			if nominal > float64(5*time.Second) {
				nominal = float64(5 * time.Second)
			}
			lo, hi := time.Duration(nominal*0.8), time.Duration(nominal*1.2)
			if hi > 5*time.Second {
				hi = 5 * time.Second
			}
			got := b.Delay(attempt)
			if got < lo || got > hi {
				t.Fatalf("draw=%v Delay(%d) = %v outside [%v, %v]", draw, attempt, got, lo, hi)
			}
		}
	}
}

func pow2(n int) float64 {
	f := 1.0
	for i := 0; i < n; i++ {
		f *= 2
	}
	return f
}

// TestDelayCap checks the jittered delay never exceeds Max even when
// jitter lands on the high side of an at-cap nominal delay.
func TestDelayCap(t *testing.T) {
	b := Backoff{Base: time.Second, Max: time.Second, Jitter: 0.5,
		Rand: func() float64 { return 0.999999 }}
	if got := b.Delay(3); got > time.Second {
		t.Fatalf("Delay = %v exceeds Max", got)
	}
}

func TestZeroValueDefaults(t *testing.T) {
	var b Backoff
	b.Rand = func() float64 { return 0.5 } // jitter multiplier exactly 1
	if got := b.Delay(0); got != DefaultBase {
		t.Fatalf("zero-value Delay(0) = %v, want %v", got, DefaultBase)
	}
	if got := b.Delay(100); got != DefaultMax {
		t.Fatalf("zero-value Delay(100) = %v, want %v", got, DefaultMax)
	}
}

// TestDoRetriesUntilSuccess runs Do on a deterministic clock: the
// injected Sleep records the schedule instead of waiting.
func TestDoRetriesUntilSuccess(t *testing.T) {
	var slept []time.Duration
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: -1,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		}}
	calls := 0
	err := Do(context.Background(), b, func(context.Context) error {
		calls++
		if calls < 5 {
			return errors.New("still down")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 5 {
		t.Fatalf("fn called %d times, want 5", calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond, 80 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v", i, slept[i], want[i])
		}
	}
}

// TestDoContextCancellation checks Do stops promptly when the context
// dies mid-sleep and surfaces both the cancellation and the last
// attempt's error.
func TestDoContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	attemptErr := errors.New("disk still on fire")
	b := Backoff{Base: time.Millisecond, Jitter: -1,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel()
			return ctx.Err()
		}}
	err := Do(ctx, b, func(context.Context) error { return attemptErr })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !errors.Is(err, attemptErr) {
		t.Fatalf("err = %v, want joined attempt error", err)
	}
}

// TestDoPreCanceled checks a dead context short-circuits before fn
// ever runs.
func TestDoPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := Do(ctx, Backoff{}, func(context.Context) error { called = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Fatal("fn ran under a pre-canceled context")
	}
}

// TestDoRealSleepCancels exercises the real timer path: cancellation
// during an actual sleep must not hang.
func TestDoRealSleepCancels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := Backoff{Base: time.Hour, Jitter: -1} // would hang if cancel is ignored
	done := make(chan error, 1)
	go func() {
		done <- Do(ctx, b, func(context.Context) error { return errors.New("down") })
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do ignored cancellation during sleep")
	}
}
