// Package retry provides capped exponential backoff with jitter — the
// pacing the store's degraded-mode recovery loop uses between attempts
// to reopen its write-ahead log. The clock and randomness are
// injectable so recovery timing never depends on wall-clock sleeps in
// tests.
package retry

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"time"
)

// Backoff describes a capped exponential backoff schedule with
// multiplicative jitter. The zero value is usable and picks the
// defaults documented on each field.
type Backoff struct {
	// Base is the delay before the first retry (default 50ms).
	Base time.Duration
	// Max caps the exponential growth (default 5s).
	Max time.Duration
	// Factor is the per-attempt growth multiplier (default 2).
	Factor float64
	// Jitter spreads each delay uniformly into
	// [d·(1−Jitter), d·(1+Jitter)] (default 0.2). Zero disables; the
	// jittered delay is still clamped to Max.
	Jitter float64

	// Rand supplies the uniform [0,1) variate for jitter; nil uses the
	// global math/rand source. Tests inject a fixed sequence.
	Rand func() float64
	// Sleep waits for d or until ctx is done; nil uses a real timer.
	// Tests inject an instant recorder.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Defaults for the zero Backoff.
const (
	DefaultBase   = 50 * time.Millisecond
	DefaultMax    = 5 * time.Second
	DefaultFactor = 2.0
	DefaultJitter = 0.2
)

func (b Backoff) base() time.Duration {
	if b.Base > 0 {
		return b.Base
	}
	return DefaultBase
}

func (b Backoff) max() time.Duration {
	if b.Max > 0 {
		return b.Max
	}
	return DefaultMax
}

func (b Backoff) factor() float64 {
	if b.Factor > 1 {
		return b.Factor
	}
	return DefaultFactor
}

func (b Backoff) jitter() float64 {
	switch {
	case b.Jitter < 0:
		return 0
	case b.Jitter == 0:
		return DefaultJitter
	case b.Jitter > 1:
		return 1
	}
	return b.Jitter
}

func (b Backoff) rand() float64 {
	if b.Rand != nil {
		return b.Rand()
	}
	return rand.Float64()
}

// Delay returns the jittered delay before retry attempt (0-based):
// min(Base·Factor^attempt, Max) scaled by the jitter draw and clamped
// to [0, Max].
func (b Backoff) Delay(attempt int) time.Duration {
	base, max := float64(b.base()), float64(b.max())
	d := base * math.Pow(b.factor(), float64(attempt))
	if d > max {
		d = max
	}
	if j := b.jitter(); j > 0 {
		d *= 1 + j*(2*b.rand()-1)
	}
	if d > max {
		d = max
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

func (b Backoff) sleep(ctx context.Context, d time.Duration) error {
	if b.Sleep != nil {
		return b.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do calls fn until it returns nil, sleeping the backoff schedule
// between attempts, or until ctx is done. On cancellation it returns
// the context error joined with fn's last error (nil if fn never ran),
// so callers can both detect the cancellation and report what kept
// failing.
func Do(ctx context.Context, b Backoff, fn func(ctx context.Context) error) error {
	var last error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return errors.Join(err, last)
		}
		if last = fn(ctx); last == nil {
			return nil
		}
		if err := b.sleep(ctx, b.Delay(attempt)); err != nil {
			return errors.Join(err, last)
		}
	}
}
