// Shipwrecks: the Figure 9 walk-through — identifying the correct query
// through provenance-based highlights.
//
// For "How many more ships were wrecked in lake Huron than in Erie?"
// the parser proposes three candidates. The highlights make it
// immediately visible that the first compares Huron against Erie
// occurrences (correct), the second compares Huron against Superior,
// and the third does not compare occurrences at all.
package main

import (
	"fmt"
	"log"

	"nlexplain"
)

func main() {
	t, err := nlexplain.NewTable("shipwrecks",
		[]string{"Ship", "Vessel", "Lake", "Lives lost"},
		[][]string{
			{"Argus", "Steamer", "Lake Huron", "25 lost"},
			{"Hydrus", "Steamer", "Lake Huron", "28 lost"},
			{"Plymouth", "Barge", "Lake Michigan", "7 lost"},
			{"Issac M. Scott", "Steamer", "Lake Huron", "28 lost"},
			{"Henry B. Smith", "Steamer", "Lake Superior", "all hands"},
			{"Lightship No. 82", "Lightship", "Lake Erie", "6 lost"},
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("question: How many more ships were wrecked in lake Huron than in Erie?")
	candidates := []string{
		`sub(count(Lake."Lake Huron"), count(Lake."Lake Erie"))`,     // correct
		`sub(count(Lake."Lake Huron"), count(Lake."Lake Superior"))`, // wrong lake
		`count(argmax(Lake."Lake Huron", "Lives lost"))`,             // no comparison at all
	}
	for i, src := range candidates {
		q, err := nlexplain.ParseQuery(src)
		if err != nil {
			log.Fatal(err)
		}
		ex, err := nlexplain.Explain(q, t)
		if err != nil {
			log.Fatal(err)
		}
		res, err := nlexplain.ExecuteQuery(q, t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- candidate %d ---\n", i+1)
		fmt.Printf("utterance: %s\n", ex.Utterance)
		fmt.Printf("result:    %s\n", res)
		fmt.Print(ex.Text())
	}
	fmt.Println("\n" + nlexplain.HighlightLegend())
	fmt.Println("\nthe framed/colored cells of candidate 1 show it comparing Huron")
	fmt.Println("and Erie occurrences — the correct translation.")
}
