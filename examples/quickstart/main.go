// Quickstart: load a table, run a lambda DCS query, and print both
// explanation methods — the NL utterance and the provenance-based
// highlights — plus the SQL translation.
package main

import (
	"fmt"
	"log"

	"nlexplain"
)

func main() {
	t, err := nlexplain.NewTable("olympics",
		[]string{"Year", "Country", "City"},
		[][]string{
			{"1896", "Greece", "Athens"},
			{"1900", "France", "Paris"},
			{"2004", "Greece", "Athens"},
			{"2008", "China", "Beijing"},
			{"2012", "UK", "London"},
			{"2016", "Brazil", "Rio de Janeiro"},
		})
	if err != nil {
		log.Fatal(err)
	}

	q, err := nlexplain.ParseQuery("max(R[Year].Country.Greece)")
	if err != nil {
		log.Fatal(err)
	}

	res, err := nlexplain.ExecuteQuery(q, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result: %s\n\n", res)

	ex, err := nlexplain.Explain(q, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("utterance: %s\n", ex.Utterance)
	fmt.Printf("sql:       %s\n\n", ex.SQL)
	fmt.Print(ex.Text())
	fmt.Println("\n" + nlexplain.HighlightLegend())

	// Derivation tree (Figure 3): formal query and utterance, composed
	// bottom-up by the same grammar.
	fmt.Println("\nderivation:")
	fmt.Print(nlexplain.Derive(q))
}
