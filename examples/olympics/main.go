// Olympics: the paper's running example (Figure 1 and Section 1).
//
// The question "Greece held its last Olympics in what year?" is parsed
// into candidate lambda DCS queries. Several candidates return the
// correct answer 2004 — but only one is the correct *translation*.
// Explanations (utterances + highlights) let a non-expert tell them
// apart, which matters as soon as the table's data changes.
package main

import (
	"fmt"
	"log"

	"nlexplain"
)

func main() {
	t, err := nlexplain.NewTable("olympics",
		[]string{"Year", "Country", "City"},
		[][]string{
			{"1896", "Greece", "Athens"},
			{"1900", "France", "Paris"},
			{"2004", "Greece", "Athens"},
			{"2008", "China", "Beijing"},
			{"2012", "UK", "London"},
			{"2016", "Brazil", "Rio de Janeiro"},
		})
	if err != nil {
		log.Fatal(err)
	}

	question := "Greece held its last Olympics in what year?"
	p := nlexplain.NewParser()
	candidates, err := nlexplain.ExplainQuestion(p, question, t)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("question: %s\n\n", question)
	for _, ce := range candidates {
		res, err := nlexplain.ExecuteQuery(ce.Candidate.Query, t)
		if err != nil {
			continue
		}
		fmt.Printf("candidate %d: %s\n", ce.Rank, ce.Candidate.Query)
		fmt.Printf("  utterance: %s\n", ce.Explanation.Utterance)
		fmt.Printf("  result:    %s\n", res)
	}

	// The user recognizes the correct translation from its utterance:
	// "value of column Year where it is the last row in rows where value
	// of column Country is Greece" — and the highlights confirm which
	// cells it touches.
	correct, err := nlexplain.ParseQuery("R[Year].argmax(Country.Greece, Index)")
	if err != nil {
		log.Fatal(err)
	}
	ex, err := nlexplain.Explain(correct, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchosen query: %s\n%s\n", correct, ex.Utterance)
	fmt.Print(ex.Text())

	// Why query correctness matters beyond answer correctness: rerun on
	// next year's table. Only the correct translation stays right.
	updated, err := nlexplain.NewTable("olympics-2026",
		[]string{"Year", "Country", "City"},
		[][]string{
			{"1896", "Greece", "Athens"},
			{"1900", "France", "Paris"},
			{"2004", "Greece", "Athens"},
			{"2008", "China", "Beijing"},
			{"2012", "UK", "London"},
			{"2016", "Brazil", "Rio de Janeiro"},
			{"2026", "Greece", "Athens"}, // hypothetical future games
		})
	if err != nil {
		log.Fatal(err)
	}
	// "the year in the row right above China's games" also evaluated to
	// 2004 on the original table — a spurious translation.
	spurious, _ := nlexplain.ParseQuery("R[Year].Prev.Country.China")
	for _, q := range []nlexplain.Query{correct, spurious} {
		res, err := nlexplain.ExecuteQuery(q, updated)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\non the updated table, %s -> %s", q, res)
	}
	fmt.Println("\n\nonly the correct translation tracks the data as it evolves.")
}
