// Feedback: the human-in-the-loop training cycle of Sections 6.2-6.3 in
// miniature.
//
// Two candidate queries answer the question "What was the last year the
// team was a part of the USL A-League?" identically (2004, Figure 8),
// so answer supervision cannot separate them. A user, reading the
// explanations, annotates the correct query; retraining on the
// question-query pair (Eq. 8) teaches the parser to rank it first.
package main

import (
	"fmt"
	"log"

	"nlexplain"
)

func main() {
	t, err := nlexplain.NewTable("usl",
		[]string{"Year", "League", "Attendance", "Open Cup"},
		[][]string{
			{"2002", "USL A-League", "6,260", "Did not qualify"},
			{"2003", "USL A-League", "5,871", "Did not qualify"},
			{"2004", "USL A-League", "5,628", "4th Round"},
			{"2005", "USL First Division", "6,028", "4th Round"},
			{"2006", "USL First Division", "5,575", "3rd Round"},
		})
	if err != nil {
		log.Fatal(err)
	}

	question := "What was the last year the team was a part of the USL A-League?"
	gold := `R[Year].argmax(League."USL A-League", Index)`

	parser := nlexplain.NewParser()
	show := func(stage string) bool {
		cands, err := nlexplain.ExplainQuestion(parser, question, t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", stage)
		topIsGold := false
		for _, ce := range cands[:min(3, len(cands))] {
			marker := " "
			if ce.Candidate.Key() == gold {
				marker = "*"
				if ce.Rank == 1 {
					topIsGold = true
				}
			}
			fmt.Printf(" %s %d. %s\n      %q\n", marker, ce.Rank, ce.Candidate.Query, ce.Explanation.Utterance)
		}
		fmt.Println()
		return topIsGold
	}

	before := show("before feedback (answer supervision only)")

	// The user reads the explanations and marks the correct query — the
	// feedback of Figure 2. That becomes an annotated training example.
	annotated := &nlexplain.Example{
		ID:          1,
		Question:    question,
		Table:       t,
		Answer:      "2004",
		GoldQuery:   gold,
		Annotations: map[string]bool{gold: true},
	}
	opts := nlexplain.TrainOptions{Epochs: 12, LearningRate: 0.5, L1: 1e-5, Seed: 1}
	parser.Train([]*nlexplain.Example{annotated}, opts)

	after := show("after retraining on the user's annotation (Eq. 8)")
	fmt.Printf("gold ranked first: before=%v after=%v\n", before, after)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
