module nlexplain

go 1.24
