package nlexplain

import (
	"strings"
	"testing"
)

func exampleTable(t testing.TB) *Table {
	t.Helper()
	tab, err := NewTable("olympics",
		[]string{"Year", "Country", "City"},
		[][]string{
			{"1896", "Greece", "Athens"},
			{"1900", "France", "Paris"},
			{"2004", "Greece", "Athens"},
			{"2008", "China", "Beijing"},
			{"2012", "UK", "London"},
			{"2016", "Brazil", "Rio de Janeiro"},
		})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestFacadeEndToEnd(t *testing.T) {
	tab := exampleTable(t)
	q, err := ParseQuery("max(R[Year].Country.Greece)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteQuery(q, tab)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != "2004" {
		t.Errorf("result = %s", res)
	}
	ex, err := Explain(q, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Utterance, "maximum of values in column Year") {
		t.Errorf("utterance = %q", ex.Utterance)
	}
	if !strings.Contains(ex.SQL, "MAX(DISTINCT Year)") {
		t.Errorf("sql = %q", ex.SQL)
	}
	if !strings.Contains(ex.Text(), "**2004**") {
		t.Errorf("text rendering missing colored output:\n%s", ex.Text())
	}
	if !strings.Contains(ex.HTML(), `class="colored"`) {
		t.Error("HTML rendering missing colored class")
	}
	if !strings.Contains(ex.ANSI(), "\x1b[") {
		t.Error("ANSI rendering missing escapes")
	}
}

func TestFacadeCSV(t *testing.T) {
	tab, err := TableFromCSV("t", strings.NewReader("A,B\n1,x\n2,y\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Errorf("rows = %d", tab.NumRows())
	}
}

func TestFacadeDerive(t *testing.T) {
	q, _ := ParseQuery("count(City.Athens)")
	tree := Derive(q)
	if tree.Yield() != Utter(q) {
		t.Error("derivation yield must equal utterance")
	}
}

func TestExplainQuestion(t *testing.T) {
	tab := exampleTable(t)
	p := NewParser()
	out, err := ExplainQuestion(p, "how many games were held in Athens?", tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || len(out) > 7 {
		t.Fatalf("candidates = %d", len(out))
	}
	for i, ce := range out {
		if ce.Rank != i+1 {
			t.Errorf("rank %d at position %d", ce.Rank, i)
		}
		if ce.Explanation.Utterance == "" {
			t.Errorf("candidate %d has no utterance", i)
		}
	}
}

func TestExplainLargeTableSamples(t *testing.T) {
	var rows [][]string
	for i := 0; i < 500; i++ {
		country := "Kenya"
		if i%7 == 0 {
			country = "Norway"
		}
		rows = append(rows, []string{country, "2000", "3"})
	}
	tab, err := NewTable("big", []string{"Country", "Year", "Rate"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := ParseQuery("max(R[Rate].Country.Norway)")
	ex, err := Explain(q, tab)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(ex.Text(), "\n"); lines > 10 {
		t.Errorf("large-table rendering has %d lines; sampling not applied", lines)
	}
}

func TestExplainJSON(t *testing.T) {
	tab := exampleTable(t)
	q, _ := ParseQuery("count(City.Athens)")
	raw, err := ExplainJSON(q, tab)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"utterance"`, `"colored"`, `"count(City.Athens)"`} {
		if !strings.Contains(string(raw), frag) {
			t.Errorf("JSON missing %s:\n%s", frag, raw)
		}
	}
}

func TestMarkingConstants(t *testing.T) {
	if MarkNone.String() != "none" || MarkColored.String() != "colored" {
		t.Error("marking aliases broken")
	}
}

func TestHelpers(t *testing.T) {
	if !strings.Contains(HighlightCSS(), ".colored") {
		t.Error("CSS missing")
	}
	if !strings.Contains(HighlightLegend(), "PO") {
		t.Error("legend missing")
	}
}
