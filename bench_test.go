package nlexplain

// One benchmark per paper table and figure (see DESIGN.md §4), plus
// ablation benches for the design choices DESIGN.md §7 calls out.
// Custom metrics (correctness, bound, minutes, …) are attached to the
// benchmark output via b.ReportMetric, so `go test -bench .` regenerates
// the paper's numbers alongside Go's timing columns.

import (
	"strconv"
	"sync"
	"testing"

	"nlexplain/internal/dcs"
	"nlexplain/internal/experiments"
	"nlexplain/internal/minisql"
	"nlexplain/internal/plan"
	"nlexplain/internal/provenance"
	"nlexplain/internal/semparse"
	"nlexplain/internal/study"
	"nlexplain/internal/table"
	"nlexplain/internal/utterance"
	"nlexplain/internal/wikitables"
	"nlexplain/internal/workload"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

func sharedBenchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv = experiments.NewEnv(experiments.DefaultConfig())
	})
	return benchEnv
}

// BenchmarkTable4UserSuccess regenerates Table 4 (user judgement
// success over explained candidates).
func BenchmarkTable4UserSuccess(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	var r experiments.Table4Result
	for i := 0; i < b.N; i++ {
		r = env.RunTable4()
	}
	b.ReportMetric(100*r.Success, "success_%")
	b.ReportMetric(float64(r.Explanations), "explanations")
}

// BenchmarkTable5WorkTime regenerates Table 5 (work time with vs
// without highlights).
func BenchmarkTable5WorkTime(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	var r experiments.Table5Result
	for i := 0; i < b.N; i++ {
		r = env.RunTable5()
	}
	b.ReportMetric(r.WithHighlights.Avg, "with_hl_min")
	b.ReportMetric(r.UtterancesOnly.Avg, "utter_only_min")
	b.ReportMetric(100*(1-r.WithHighlights.Avg/r.UtterancesOnly.Avg), "reduction_%")
}

// BenchmarkTable6Correctness regenerates Table 6 (parser / user /
// hybrid / bound correctness).
func BenchmarkTable6Correctness(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	var r experiments.Table6Result
	for i := 0; i < b.N; i++ {
		r = env.RunTable6()
	}
	b.ReportMetric(100*r.Rates.Parser, "parser_%")
	b.ReportMetric(100*r.Rates.User, "user_%")
	b.ReportMetric(100*r.Rates.Hybrid, "hybrid_%")
	b.ReportMetric(100*r.Rates.Bound, "bound_%")
}

// BenchmarkTable7CandidateGen times candidate generation per question
// (Table 7, column 1).
func BenchmarkTable7CandidateGen(b *testing.B) {
	env := sharedBenchEnv(b)
	questions := env.Dataset.Test
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := questions[i%len(questions)]
		q := semparse.Analyze(ex.Question, ex.Table)
		_ = semparse.GenerateCandidates(q, ex.Table)
	}
}

// BenchmarkTable7UtteranceGen times utterance generation per candidate
// (Table 7, column 2).
func BenchmarkTable7UtteranceGen(b *testing.B) {
	env := sharedBenchEnv(b)
	ex := env.Dataset.Test[0]
	cands := env.Parser.Parse(ex.Question, ex.Table)
	if len(cands) == 0 {
		b.Skip("no candidates")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = utterance.Utter(cands[i%len(cands)].Query)
	}
}

// BenchmarkTable7HighlightsGen times highlight generation per candidate
// (Table 7, column 3).
func BenchmarkTable7HighlightsGen(b *testing.B) {
	env := sharedBenchEnv(b)
	ex := env.Dataset.Test[0]
	cands := env.Parser.Parse(ex.Question, ex.Table)
	if len(cands) == 0 {
		b.Skip("no candidates")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := provenance.Highlight(cands[i%len(cands)].Query, ex.Table); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable9Feedback regenerates Table 9 (training on annotation
// feedback vs answer supervision). This is the heaviest bench.
func BenchmarkTable9Feedback(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	var r experiments.Table9Result
	for i := 0; i < b.N; i++ {
		r = env.RunTable9()
	}
	if len(r.Rows) == 4 {
		b.ReportMetric(100*r.Rows[0].Correctness, "with_ann_%")
		b.ReportMetric(100*r.Rows[1].Correctness, "without_ann_%")
		b.ReportMetric(r.Rows[0].MRR, "with_ann_mrr")
		b.ReportMetric(r.Rows[1].MRR, "without_ann_mrr")
	}
}

// BenchmarkTable10Translation regenerates Table 10 (operator-by-operator
// SQL translation + equivalence check).
func BenchmarkTable10Translation(b *testing.B) {
	var rows []experiments.Table10Row
	for i := 0; i < b.N; i++ {
		rows = experiments.RunTable10()
	}
	ok := 0
	for _, r := range rows {
		if r.Equivalent {
			ok++
		}
	}
	b.ReportMetric(float64(ok), "equivalent_ops")
}

// BenchmarkFigureGallery renders every figure of the paper (1, 3-9,
// 11-22): utterance + highlights + sampling.
func BenchmarkFigureGallery(b *testing.B) {
	nums := experiments.FigureNumbers()
	for i := 0; i < b.N; i++ {
		for _, n := range nums {
			if _, err := experiments.RenderFigure(n); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationTopK sweeps k (the number of explained candidates)
// and reports the correctness bound at each k — the paper's k=7 vs k=14
// argument (Section 7.2).
func BenchmarkAblationTopK(b *testing.B) {
	env := sharedBenchEnv(b)
	questions := env.Dataset.Test
	if len(questions) > 120 {
		questions = questions[:120]
	}
	for _, k := range []int{1, 3, 7, 14} {
		k := k
		b.Run(benchName("k", k), func(b *testing.B) {
			var bound float64
			for i := 0; i < b.N; i++ {
				m := env.Parser.Evaluate(questions, k)
				bound = m.Bound()
			}
			b.ReportMetric(100*bound, "bound_%")
		})
	}
}

// BenchmarkAblationHighlights toggles highlights in the worker model,
// quantifying their work-time effect (this is Table 5 as an ablation).
func BenchmarkAblationHighlights(b *testing.B) {
	env := sharedBenchEnv(b)
	for _, hl := range []bool{true, false} {
		hl := hl
		name := "with-highlights"
		if !hl {
			name = "utterances-only"
		}
		b.Run(name, func(b *testing.B) {
			var wt study.WorkTimes
			for i := 0; i < b.N; i++ {
				sim := study.NewSimulation(env.Parser, 5)
				wt = study.SummarizeWorkTimes(sim.Run(env.Dataset.Test, 10, 20, hl), 20)
			}
			b.ReportMetric(wt.Avg, "minutes")
		})
	}
}

// BenchmarkAblationFeatures zeroes one feature family at a time in the
// trained model and reports the dev-correctness drop — quantifying what
// each family of φ(x,T,z) contributes.
func BenchmarkAblationFeatures(b *testing.B) {
	env := sharedBenchEnv(b)
	dev := env.Dataset.Test
	if len(dev) > 120 {
		dev = dev[:120]
	}
	families := map[string][]string{
		"full":            nil,
		"no-triggers":     {"agree:", "miss:", "spur:", "flip:"},
		"no-grounding":    {"entityCoverage", "entitiesUngrounded", "numEntities"},
		"no-column-match": {"colCoverage", "colsUnmentioned"},
		"no-type-match":   {"wh="},
	}
	// Deterministic sub-bench order.
	for _, name := range []string{"full", "no-triggers", "no-grounding", "no-column-match", "no-type-match"} {
		prefixes := families[name]
		b.Run(name, func(b *testing.B) {
			var corr float64
			for i := 0; i < b.N; i++ {
				p := env.Parser.Clone()
				for w := range p.Weights {
					for _, pre := range prefixes {
						if len(w) >= len(pre) && w[:len(pre)] == pre {
							delete(p.Weights, w)
						}
					}
				}
				corr = p.Evaluate(dev, 7).Correctness()
			}
			b.ReportMetric(100*corr, "correct_%")
		})
	}
}

// BenchmarkAblationL1 sweeps the ℓ1 strength λ of Eq. 6 and reports dev
// correctness, the cross-validation the paper alludes to.
func BenchmarkAblationL1(b *testing.B) {
	env := sharedBenchEnv(b)
	train := env.Dataset.Train
	if len(train) > 300 {
		train = train[:300]
	}
	dev := env.Dataset.Test
	if len(dev) > 100 {
		dev = dev[:100]
	}
	for _, l1 := range []float64{0, 1e-4, 1e-2} {
		l1 := l1
		b.Run(benchNameF("lambda", l1), func(b *testing.B) {
			var corr float64
			for i := 0; i < b.N; i++ {
				p := semparse.NewParser()
				p.ShareCandidateCache(env.Parser)
				opt := semparse.DefaultTrainOptions()
				opt.Epochs = 2
				opt.L1 = l1
				p.Train(train, opt)
				corr = p.Evaluate(dev, 7).Correctness()
			}
			b.ReportMetric(100*corr, "correct_%")
		})
	}
}

// BenchmarkAblationDatasetHardness sweeps the dataset obfuscation rate,
// showing how linguistic variance drives the correctness bound down —
// the mechanism behind the paper's 56% bound.
func BenchmarkAblationDatasetHardness(b *testing.B) {
	for _, h := range []float64{0, 0.5, 1} {
		h := h
		b.Run(benchNameF("hardness", h), func(b *testing.B) {
			var bound float64
			for i := 0; i < b.N; i++ {
				opt := wikitables.DefaultOptions()
				opt.Tables = 40
				opt.QuestionsPerTable = 6
				opt.Hardness = h
				ds := wikitables.Generate(opt)
				p := semparse.NewParser()
				topt := semparse.DefaultTrainOptions()
				topt.Epochs = 2
				p.Train(ds.Train, topt)
				bound = p.Evaluate(ds.Test, 7).Bound()
			}
			b.ReportMetric(100*bound, "bound_%")
		})
	}
}

// planBenchCases are the superlative/comparative/join shapes the plan
// refactor targets, run over the 20k-row Figure 7 growth table so
// index and vectorization effects are visible above noise.
var planBenchCases = []struct{ name, query string }{
	{"superlative", "argmax(Record, Year)"},
	{"superlative-min", `argmin(Record, "Growth Rate")`},
	{"comparative", `"Growth Rate">2`},
	{"comparative-count", `count(Year>=2000)`},
	{"join-aggregate", "max(R[Year].Country.Madagascar)"},
}

var (
	planBenchTableOnce sync.Once
	planBenchTable     *table.Table
)

func sharedPlanBenchTable() *table.Table {
	planBenchTableOnce.Do(func() { planBenchTable = experiments.FigureTable(7) })
	return planBenchTable
}

// planWarmCases are the warm-cache benchmark queries, phrased over the
// shared workload corpus schema (Nation/City/Year/Games/Result).
var planWarmCases = []struct{ name, query string }{
	{"lookup", "Nation.Greece"},
	{"superlative", "argmax(Record, Year)"},
	{"superlative-min", "argmin(Record, Games)"},
	{"comparative", "Games>150"},
	{"comparative-count", "count(Year>=2000)"},
	{"join-aggregate", "max(R[Year].Nation.Fiji)"},
}

var (
	workloadBenchTableOnce sync.Once
	workloadBenchTable     *table.Table
)

// sharedWorkloadBenchTable is the 2048-row table of the seeded
// workload corpus (seed 1) — the allocation-gate reference table.
func sharedWorkloadBenchTable() *table.Table {
	workloadBenchTableOnce.Do(func() {
		t, ok := workload.NewCorpus(1).Table(workload.TableHuge)
		if !ok {
			panic("workload corpus is missing " + workload.TableHuge)
		}
		workloadBenchTable = t
	})
	return workloadBenchTable
}

// BenchmarkPlanExec times answer-only execution of precompiled plans
// (the warm-plan-cache steady state of the serving path) on the
// 2048-row workload table. allocs/op here is the metric the CI
// perf-gate watches: with the pooled executor arena it stays O(1)
// per query regardless of table size.
func BenchmarkPlanExec(b *testing.B) {
	tab := sharedWorkloadBenchTable()
	for _, c := range planWarmCases {
		compiled, err := dcs.Compile(dcs.MustParse(c.query), tab)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := compiled.ExecuteWith(tab, plan.Noop{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlanExecCold times compile + answer-only execution (a plan
// cache miss) on the Figure 7 growth table — the shape the pre-arena
// BenchmarkPlanExec measured.
func BenchmarkPlanExecCold(b *testing.B) {
	tab := sharedPlanBenchTable()
	for _, c := range planBenchCases {
		q := dcs.MustParse(c.query)
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dcs.ExecuteAnswer(q, tab); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInterpExec times the legacy tree-walking interpreter on the
// same workload as BenchmarkPlanExec.
func BenchmarkInterpExec(b *testing.B) {
	tab := sharedPlanBenchTable()
	for _, c := range planBenchCases {
		q := dcs.MustParse(c.query)
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dcs.ExecuteInterpreted(q, tab); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlanExecSQL times mini-SQL execution through the plan core
// (with predicate pushdown) against the interpreted evaluator.
func BenchmarkPlanExecSQL(b *testing.B) {
	tab := sharedPlanBenchTable()
	const src = `SELECT Country FROM T WHERE "Growth Rate" > 2 AND Year >= 2000`
	q, err := minisql.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("planned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := minisql.Exec(q, tab); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("interpreted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := minisql.ExecInterpreted(q, tab); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCoreExecute times raw lambda DCS execution of the running
// example (micro-benchmark for the executor).
func BenchmarkCoreExecute(b *testing.B) {
	tab := experiments.FigureTable(1)
	q := dcs.MustParse("max(R[Year].Country.Greece)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dcs.Execute(q, tab); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}

func benchNameF(prefix string, v float64) string {
	return prefix + "=" + strconv.FormatFloat(v, 'g', -1, 64)
}
