// Package nlexplain explains formal queries over web tables to
// non-expert users, reproducing "Explaining Queries over Web Tables to
// Non-Experts" (Berant, Deutch, Globerson, Milo, Wolfson — ICDE 2019).
//
// The library provides, end to end:
//
//   - a lambda DCS query language over single web tables (parser, type
//     checker, executor), with a verified translation to SQL;
//   - the paper's multilevel cell-based provenance model
//     Prov(Q,T) = (PO, PE, PC) and provenance-based table highlights
//     (Algorithm 1), with record sampling for large tables;
//   - query-to-utterance explanation via an NL-templated grammar
//     (Table 3), including derivation trees (Figure 3);
//   - a trainable log-linear semantic parser mapping NL questions to
//     candidate queries (Eq. 4-8), supporting answer supervision and
//     annotation (human-in-the-loop) supervision;
//   - renderers (text, ANSI, HTML) for highlighted tables.
//
// Quick start:
//
//	t, _ := nlexplain.NewTable("olympics",
//	    []string{"Year", "Country", "City"},
//	    [][]string{{"1896", "Greece", "Athens"}, {"2004", "Greece", "Athens"}})
//	q, _ := nlexplain.ParseQuery("max(R[Year].Country.Greece)")
//	ex, _ := nlexplain.Explain(q, t)
//	fmt.Println(ex.Utterance) // "maximum of values in column Year in rows where ..."
//	fmt.Println(ex.Text())    // the highlighted table
//
// # Serving explanations at scale
//
// For serving many concurrent requests, the package re-exports the
// explanation pipeline engine (package internal/engine): LRU caches
// for parsed ASTs and full explanation results keyed on (table
// version, query), an in-flight deduplicator, a bounded worker pool
// for batches with per-query context deadlines, and scrape-ready
// counters. Table state lives in a sharded versioned store
// (internal/store): every query pins an immutable snapshot, live
// mutations (RegisterTable over an existing name, AppendRows,
// DropTable) install a new snapshot under a monotonic generation and
// synchronously purge the displaced version's cached results, and
// per-table memory accounting against EngineOptions.StoreByteBudget
// evicts cold tables' derived indexes (never base data) under
// pressure:
//
//	eng := nlexplain.NewEngine(nlexplain.EngineOptions{Workers: 8})
//	eng.RegisterTable(t)
//	out, err := eng.Explain(ctx, "olympics", "max(R[Year].Country.Greece)")
//	info, err := eng.AppendRows("olympics", [][]string{{"2016", "Rio", "Brazil", "207"}})
//	results := eng.ExplainBatch(ctx, []nlexplain.ExplainRequest{...})
//	stats := eng.Stats() // hits, misses, executions, latency, store bytes
//
// cmd/wtq-server wraps the engine in an HTTP/JSON service with
// endpoints POST /v1/tables, PATCH/DELETE /v1/tables/{name},
// /v1/explain, /v1/explain/batch,
// /v1/answer, /v1/parse and GET /v1/healthz, /v1/stats; see
// examples/server for a curl transcript. cmd/wtq-bench generates
// seeded, reproducible query workloads (internal/workload) and drives
// them at the engine or a live server, producing the JSON perf
// reports CI gates on. Build and run everything through the Makefile:
// `make build test vet fmt cover bench perf-gate serve`, mirrored
// one-to-one by the GitHub Actions workflow in
// .github/workflows/ci.yml.
package nlexplain

import (
	"fmt"
	"io"

	"nlexplain/internal/dcs"
	"nlexplain/internal/engine"
	"nlexplain/internal/export"
	"nlexplain/internal/provenance"
	"nlexplain/internal/render"
	"nlexplain/internal/semparse"
	"nlexplain/internal/sqlgen"
	"nlexplain/internal/table"
	"nlexplain/internal/utterance"
)

// Core data-model types (see the table package for full documentation).
type (
	// Table is a single web table with ordered, indexed records.
	Table = table.Table
	// Value is a typed cell value (string, number or date).
	Value = table.Value
	// CellRef identifies one cell by (row, column).
	CellRef = table.CellRef
	// CellSet is a set of cells — the codomain of the provenance
	// functions.
	CellSet = table.CellSet
)

// Query-language types.
type (
	// Query is a lambda DCS expression.
	Query = dcs.Expr
	// Result is a query denotation: records, values or a scalar.
	Result = dcs.Result
)

// Provenance and explanation types.
type (
	// Provenance is the multilevel cell-based provenance (PO, PE, PC).
	Provenance = provenance.Prov
	// Highlights assigns each cell its marking per Algorithm 1.
	Highlights = provenance.Highlights
	// Marking is a highlight class: None, Lit, Framed or Colored.
	Marking = provenance.Marking
	// DerivationNode is a node of the Figure 3 derivation tree.
	DerivationNode = utterance.Node
)

// Highlight marking levels.
const (
	MarkNone    = provenance.None
	MarkLit     = provenance.Lit
	MarkFramed  = provenance.Framed
	MarkColored = provenance.Colored
)

// Semantic-parser types.
type (
	// Parser is the trainable log-linear semantic parser.
	Parser = semparse.Parser
	// Candidate is one generated query with features and result.
	Candidate = semparse.Candidate
	// Example is a training/evaluation instance.
	Example = semparse.Example
	// TrainOptions configures AdaGrad + L1 training.
	TrainOptions = semparse.TrainOptions
	// Metrics aggregates correctness / answer accuracy / MRR / bound.
	Metrics = semparse.Metrics
)

// NewTable builds a table from a header and raw rows; cell text is
// typed automatically (numbers, dates, strings).
func NewTable(name string, columns []string, rows [][]string) (*Table, error) {
	return table.New(name, columns, rows)
}

// TableFromCSV reads a table whose first CSV record is the header.
func TableFromCSV(name string, r io.Reader) (*Table, error) {
	return table.FromCSV(name, r)
}

// ParseQuery reads a lambda DCS expression in the paper's surface
// syntax, e.g. "max(R[Year].Country.Greece)".
func ParseQuery(src string) (Query, error) { return dcs.Parse(src) }

// ExecuteQuery checks and evaluates a query against a table. The
// query compiles into the shared relational plan core (internal/plan)
// and runs with witness-cell capture on, so the Result carries the PO
// provenance cells.
func ExecuteQuery(q Query, t *Table) (*Result, error) { return dcs.Execute(q, t) }

// ExecuteQueryAnswer is ExecuteQuery on the answer-only fast path: no
// witness cells are computed, which is measurably faster when only the
// denotation matters (batch answering, gold-answer comparison).
func ExecuteQueryAnswer(q Query, t *Table) (*Result, error) { return dcs.ExecuteAnswer(q, t) }

// ToSQL translates a query to SQL over the table "T" (the Table 10
// mapping).
func ToSQL(q Query) (string, error) { return sqlgen.TranslateSQL(q) }

// Utter renders the NL utterance explaining a query (Section 5.1).
func Utter(q Query) string { return utterance.Utter(q) }

// Derive builds the derivation tree carrying both the formal query and
// its utterance (Figure 3).
func Derive(q Query) *DerivationNode { return utterance.Derive(q) }

// HighlightQuery computes provenance-based highlights for a query on a
// table (Algorithm 1).
func HighlightQuery(q Query, t *Table) (*Highlights, error) {
	return provenance.Highlight(q, t)
}

// SampleRows picks representative records for rendering a large table's
// highlights (Section 5.3).
func SampleRows(q Query, t *Table, h *Highlights) []int {
	return provenance.Sample(q, t, h)
}

// NewParser returns the baseline semantic parser with heuristic
// initial weights; train it with (*Parser).Train.
func NewParser() *Parser { return semparse.NewParser() }

// Engine types, re-exported from the internal pipeline engine so
// services embed the same machinery wtq-server runs on.
type (
	// Engine is the concurrent explanation pipeline: versioned table
	// store, AST/result LRU caches, bounded worker pool and counters.
	Engine = engine.Engine
	// EngineOptions configures NewEngine; the zero value picks
	// defaults (GOMAXPROCS workers, 1024-entry caches, 10s timeout,
	// 16 store shards, unlimited store byte budget).
	EngineOptions = engine.Options
	// EngineStats is a scrape-ready snapshot of engine counters.
	EngineStats = engine.Stats
	// EngineExplanation is the engine's JSON-ready pipeline output.
	EngineExplanation = engine.Explanation
	// EngineAnswer is the engine's answer-only fast-path output.
	EngineAnswer = engine.Answer
	// ExplainRequest is one query of an ExplainBatch call.
	ExplainRequest = engine.Request
	// ExplainBatchResult is one in-order outcome of ExplainBatch.
	ExplainBatchResult = engine.BatchResult
	// TableInfo describes a table registered with an Engine.
	TableInfo = engine.TableInfo
	// TableDetail is the full table resource: TableInfo plus schema and
	// resident bytes, as served by GET /v1/tables/{name}.
	TableDetail = engine.TableDetail
	// RankedCandidate is one semantic-parse candidate on the wire.
	RankedCandidate = engine.RankedCandidate
	// EngineHealth reports the engine's serving state: "ok", or
	// "degraded" with a reason while the durable store is read-only
	// and recovering.
	EngineHealth = engine.Health
)

// NewEngine builds a concurrent explanation engine (zero Options =
// defaults). It panics if opts request a durable data directory that
// cannot be opened or recovered; services that set EngineOptions.DataDir
// should prefer OpenEngine and handle the error.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// OpenEngine builds a concurrent explanation engine, returning an error
// instead of panicking when the durable data directory (if
// EngineOptions.DataDir is set) cannot be opened, recovered from its
// checkpoint + WAL tail, or fails its checksums. Close the engine to
// flush and sync the log before exit.
func OpenEngine(opts EngineOptions) (*Engine, error) { return engine.Open(opts) }

// ErrUnknownTable reports an engine request against an unregistered
// table name; match it with errors.Is.
var ErrUnknownTable = engine.ErrUnknownTable

// ErrInternal marks a server-side engine pipeline failure (a contained
// panic); match it with errors.Is.
var ErrInternal = engine.ErrInternal

// ErrOverloaded reports that the engine shed a request because its
// admission queue is full; match it with errors.Is.
var ErrOverloaded = engine.ErrOverloaded

// ErrUnavailable reports a mutation rejected because the durable store
// cannot persist it right now (durability fault or degraded read-only
// mode). Reads keep serving; back off and retry the mutation. Match it
// with errors.Is.
var ErrUnavailable = engine.ErrUnavailable

// Explanation is the complete explanation bundle of one query on one
// table: what the deployment interface shows a non-expert next to each
// candidate (Section 6.3).
type Explanation struct {
	Query      Query
	Table      *Table
	Utterance  string
	SQL        string // empty if the query is outside the SQL fragment
	Highlights *Highlights
	// SampleRows are the Section 5.3 representative records; renderers
	// use them when the table is large.
	SampleRows []int
}

// Explain builds the full explanation for a query over a table.
func Explain(q Query, t *Table) (*Explanation, error) {
	h, err := provenance.Highlight(q, t)
	if err != nil {
		return nil, err
	}
	e := &Explanation{
		Query:      q,
		Table:      t,
		Utterance:  utterance.Utter(q),
		Highlights: h,
		SampleRows: provenance.Sample(q, t, h),
	}
	if sql, err := sqlgen.TranslateSQL(q); err == nil {
		e.SQL = sql
	}
	return e, nil
}

// displayRows returns all rows for small tables and the provenance
// sample for large ones.
func (e *Explanation) displayRows() []int {
	const largeTable = 40
	if e.Table.NumRows() > largeTable {
		return e.SampleRows
	}
	return nil
}

// Text renders the highlighted table with plain-text markers.
func (e *Explanation) Text() string {
	return render.Text(e.Table, e.Highlights, e.displayRows())
}

// ANSI renders the highlighted table with terminal colors.
func (e *Explanation) ANSI() string {
	return render.ANSI(e.Table, e.Highlights, e.displayRows())
}

// HTML renders the highlighted table as an HTML fragment; pair it with
// HighlightCSS.
func (e *Explanation) HTML() string {
	return render.HTML(e.Table, e.Highlights, e.displayRows())
}

// HighlightCSS is the stylesheet for Explanation.HTML output.
func HighlightCSS() string { return render.CSS() }

// HighlightLegend describes the text markers used by Explanation.Text.
func HighlightLegend() string { return render.Legend() }

// ExplainJSON serializes the full explanation of a query over a table
// as indented JSON — the wire format a web front-end (the paper's
// deployment interface of Section 6.3) consumes. Large tables are
// sampled per Section 5.3.
func ExplainJSON(q Query, t *Table) ([]byte, error) {
	return export.Marshal(q, t)
}

// CandidateExplanation pairs a ranked candidate with its explanation —
// one row of the deployment interface.
type CandidateExplanation struct {
	Rank        int
	Candidate   *Candidate
	Explanation *Explanation
}

// ExplainQuestion runs the deployment pipeline of Figure 2: parse the
// question into ranked candidate queries and explain each of the top-k.
func ExplainQuestion(p *Parser, question string, t *Table) ([]CandidateExplanation, error) {
	cands := p.Parse(question, t)
	if len(cands) == 0 {
		return nil, fmt.Errorf("no candidate queries generated for %q", question)
	}
	out := make([]CandidateExplanation, 0, len(cands))
	for i, c := range cands {
		ex, err := Explain(c.Query, t)
		if err != nil {
			return nil, fmt.Errorf("explaining candidate %d (%s): %w", i+1, c.Query, err)
		}
		out = append(out, CandidateExplanation{Rank: i + 1, Candidate: c, Explanation: ex})
	}
	return out, nil
}
