# CI and humans invoke the same targets: .github/workflows/ci.yml runs
# build, vet, fmt, test, cover, bench and perf-gate through this file.

GO ?= go

# COVERAGE_FLOOR is the minimum total statement coverage (percent)
# `make cover` accepts; CI fails below it. Raise it as coverage grows,
# never lower it to make a PR pass.
COVERAGE_FLOOR = 65

# Perf-gate knobs: the checked-in baseline and the tolerances CI
# compares with. Wall-clock tolerances are deliberately generous (CI
# machines are noisy): they catch step-change regressions, not jitter.
# Allocation counts are near-deterministic for the pinned op multiset,
# so allocs/op gets a tight 1.5x gate, and compare writes a
# benchstat-style old-vs-new summary CI uploads on every PR.
PERF_BASELINE = bench_baseline.json
PERF_REPORT   = bench_report.json
PERF_SUMMARY  = perf_summary.txt
PERF_FLAGS    = -max-p50-ratio 4 -max-p99-ratio 4 -min-throughput-ratio 0.2 -max-allocs-ratio 1.5 -summary $(PERF_SUMMARY)

# The bigtable leg of the perf gate: scan-heavy traffic over a pinned
# 100K-row table, gated on rows/sec (scan throughput) in addition to
# the usual latency/throughput tolerances. The rows/sec floor is a
# generous 0.5x for the same noisy-runner reasons as above.
# -min-morsels-skipped 1 additionally requires the run to prove
# zone-map data skipping engaged (the mix's big_selective family must
# book skipped morsels); SKIP_MIN_GAIN is the wall-clock floor the
# skipgain step enforces on the high-selectivity probes.
PERF_BASELINE_BIG = bench_baseline_big.json
PERF_REPORT_BIG   = bench_report_big.json
PERF_SUMMARY_BIG  = perf_summary_big.txt
BIG_ROWS          = 100000
SKIP_MIN_GAIN     = 3
PERF_FLAGS_BIG    = -max-p50-ratio 4 -max-p99-ratio 4 -min-throughput-ratio 0.2 -min-rows-ratio 0.5 -min-morsels-skipped 1 -summary $(PERF_SUMMARY_BIG)

.PHONY: all build test vet fmt cover bench baseline baseline-big perf-gate metrics-lint store-stress bigtable-stress crash-stress fault-stress fuzz-wal speedup skipgain serve ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails when any file needs reformatting (including -s
# simplifications), listing the offenders.
fmt:
	@out=$$(gofmt -s -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# cover writes coverage.out (uploaded as a CI artifact) and enforces
# the COVERAGE_FLOOR on total statement coverage. It runs under the
# race detector, so `make ci` gets race checking and coverage from one
# test-suite execution instead of two.
cover:
	$(GO) test -race -count=1 -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVERAGE_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVERAGE_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% is below the $(COVERAGE_FLOOR)% floor"; exit 1; }

# bench smoke-runs every benchmark once; -benchtime=1x keeps it cheap
# enough for CI while still executing each pipeline end to end, and
# -benchmem records B/op + allocs/op for every benchmark (the
# allocation columns of BenchmarkPlanExec/BenchmarkPlanExecSQL/
# BenchmarkStoreSnapshot are the hot-path budget). The morsel-executor
# benchmarks then rerun at -cpu 1,4 so the serial-vs-parallel cost of
# the plan kernels is on record for both a starved and a multicore
# box. The output lands in bench.out (gitignored) so CI can upload it
# as an artifact and the perf trajectory stays recorded.
bench:
	@$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./... > bench.out 2>&1 || { cat bench.out; exit 1; }
	@$(GO) test -run='^$$' -bench='BenchmarkBigTable' -benchtime=1x -benchmem -cpu 1,4 ./internal/plan/ >> bench.out 2>&1 || { cat bench.out; exit 1; }
	@cat bench.out
	@echo "benchstat-friendly output written to $$(pwd)/bench.out"

# store-stress reruns the versioned-store concurrency suite (snapshot
# isolation, churn, eviction) plus the zone-map property tests and the
# segment footer round-trips under the race detector, twice, exactly
# as the dedicated CI shard does.
store-stress:
	$(GO) test -race -run 'Store|Zone|Segment' -count=2 ./internal/store/... ./internal/engine/... ./internal/table/... ./internal/segment/...

# bigtable-stress is the data-race gate for the morsel-parallel
# executor: the forced-parallel differential suites, the NaN/tie and
# cancellation tests, and the engine-level hammer (8 query goroutines
# racing a store mutator over a pinned snapshot) all rerun under the
# race detector.
bigtable-stress:
	$(GO) test -race -run BigTable -count=1 ./internal/plan/... ./internal/engine/...
	$(GO) test -race -run 'TestPlanDifferentialParallel|TestSQLPlanDifferentialParallel' -count=1 ./internal/dcs/... ./internal/minisql/...

# crash-stress is the durability gate: a real wtq-server (built -race)
# is SIGKILLed mid-churn in a loop, restarted on the same data
# directory, and every acknowledged mutation is checked to have
# survived with its content-hash version and generation intact. Set
# WTQ_CRASH_DIR to keep the data directory (CI uploads it as an
# artifact when the gate fails) and WTQ_CRASH_ITERS to change the kill
# count.
crash-stress:
	WTQ_CRASH=1 $(GO) test -race -run TestCrashRecovery -count=1 -timeout 10m -v ./cmd/wtq-server/

# fault-stress is the degraded-mode gate: the seeded chaos workload
# (50 cycles x -count=2 = 100 fault/recovery episodes under the race
# detector), the store's degraded-lifecycle suite, the HTTP 503
# envelope test, and the WAL/segment fault-schedule tests. Every
# episode must lose zero acked mutations, fail fast while degraded,
# and recover in bound. Set WTQ_CHAOS_CYCLES to change the episode
# count.
fault-stress:
	WTQ_CHAOS_CYCLES=$${WTQ_CHAOS_CYCLES:-50} $(GO) test -race -count=2 -timeout 10m \
		-run 'TestChaos|TestStoreDegraded|TestStoreClose|TestServerDegraded|TestWALFault|TestWALTorn|TestWALLying|TestSegmentWriteFault|TestSegmentZonesSurvive|TestManifestTorn' \
		./internal/workload/ ./internal/store/ ./internal/wal/ ./internal/segment/ ./cmd/wtq-server/

# fuzz-wal runs the WAL replay fuzzer for a bounded window: any input
# must either recover (torn tails truncated) or be rejected as corrupt
# — never panic, never mis-parse. The seed corpus plus 30s of mutation
# is cheap enough for every CI run; run with a longer -fuzztime
# locally when touching the framing code.
fuzz-wal:
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime 30s ./internal/wal/

# baseline regenerates the checked-in perf-gate baseline with the
# CI-canonical workload (seed 1, mixed traffic, op-count bound).
baseline:
	$(GO) run ./cmd/wtq-bench baseline -out $(PERF_BASELINE)

# baseline-big regenerates the bigtable-leg baseline: scan-heavy
# answer-only traffic over the pinned $(BIG_ROWS)-row table.
baseline-big:
	$(GO) run ./cmd/wtq-bench baseline -mix bigtable -big-rows $(BIG_ROWS) -ops 200 -out $(PERF_BASELINE_BIG)

# perf-gate reproduces the CI job locally: run the canonical workload,
# then diff the fresh report against the checked-in baseline.
# -require-metrics makes the run fail unless the target's /metrics
# scrape succeeds and is non-empty, so the observability surface is
# load-tested on every gate run. The second leg reruns the gate with
# the bigtable mix, whose compare additionally enforces the rows/sec
# scan-throughput floor, and the speedup step appends the measured
# serial-vs-parallel ratios (with GOMAXPROCS disclosed) to the summary
# artifact — it hard-fails if parallel answers ever diverge from
# serial, so result identity is load-tested on every gate run too.
# The skipgain step then proves the zone-map layer earns its keep:
# high-selectivity range counts must run >= $(SKIP_MIN_GAIN)x faster
# with skipping on than off, with identical answers and a moving
# skipped-morsel counter.
# Both run legs execute with -data-dir, so the gate measures the
# pipeline with durability on: the baselines' tolerances double as the
# budget for WAL group commit staying off the query hot path.
perf-gate:
	rm -rf perf_data && mkdir -p perf_data
	$(GO) run ./cmd/wtq-bench run -seed 1 -mix mixed -ops 600 -workers 4 -require-metrics -data-dir perf_data/mixed -out $(PERF_REPORT)
	$(GO) run ./cmd/wtq-bench compare $(PERF_FLAGS) $(PERF_BASELINE) $(PERF_REPORT)
	$(GO) run ./cmd/wtq-bench run -seed 1 -mix bigtable -big-rows $(BIG_ROWS) -ops 200 -workers 4 -data-dir perf_data/big -out $(PERF_REPORT_BIG)
	$(GO) run ./cmd/wtq-bench compare $(PERF_FLAGS_BIG) $(PERF_BASELINE_BIG) $(PERF_REPORT_BIG)
	$(GO) run ./cmd/wtq-bench speedup -rows 1000000 -summary $(PERF_SUMMARY)
	$(GO) run ./cmd/wtq-bench skipgain -rows 1000000 -min-gain $(SKIP_MIN_GAIN) -summary $(PERF_SUMMARY_BIG)
	rm -rf perf_data

# speedup runs the big-table query families serial and morsel-parallel
# back to back, verifies bitwise-identical results, and prints the
# per-family speedup with GOMAXPROCS disclosed.
speedup:
	$(GO) run ./cmd/wtq-bench speedup -rows 1000000

# skipgain runs selective range counts over the big table with
# zone-map skipping off vs on, verifies identical answers, and
# enforces the $(SKIP_MIN_GAIN)x floor on the high-selectivity probes.
skipgain:
	$(GO) run ./cmd/wtq-bench skipgain -rows 1000000 -min-gain $(SKIP_MIN_GAIN)

# metrics-lint verifies the metric namespace: every registered series
# name well-formed, collision-free and matching the canonical list in
# internal/metric/registry_test.go. Registration panics make collisions
# a wiring-time failure; this target makes them a reviewable diff.
metrics-lint:
	$(GO) test -run TestRegistryNames -count=1 ./internal/metric/

serve:
	$(GO) run ./cmd/wtq-server -demo

ci: build vet fmt cover bench metrics-lint bigtable-stress perf-gate
