# CI and humans invoke the same targets: .github/workflows/ci.yml runs
# build, vet, fmt, test and bench through this file.

GO ?= go

.PHONY: all build test vet fmt bench serve ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails when any file needs reformatting, listing the offenders.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench smoke-runs every benchmark once; -benchtime=1x keeps it cheap
# enough for CI while still executing each pipeline end to end. The
# output lands in bench.out so CI can upload it as an artifact and the
# perf trajectory (plan vs interpreted execution) stays recorded.
bench:
	@$(GO) test -run='^$$' -bench=. -benchtime=1x ./... > bench.out 2>&1 || { cat bench.out; exit 1; }
	@cat bench.out

serve:
	$(GO) run ./cmd/wtq-server -demo

ci: build vet fmt test bench
