package main

import "testing"

func TestRunBuiltin(t *testing.T) {
	if err := run("", "Greece held its last Olympics in what year?", 3, false); err != nil {
		t.Errorf("run: %v", err)
	}
}

func TestRunANSI(t *testing.T) {
	if err := run("", "how many games were held in Athens?", 2, true); err != nil {
		t.Errorf("run: %v", err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("/nonexistent.csv", "q", 3, false); err == nil {
		t.Error("missing file should fail")
	}
}
