// Command wtq-parse is the interactive deployment interface of the
// paper (Figure 2): it parses an NL question over a CSV table into
// ranked candidate lambda DCS queries and explains each with an NL
// utterance and provenance-based highlights, so a non-expert can pick
// the correct one.
//
// Usage:
//
//	wtq-parse -table data.csv -question 'how many games were held in Athens?' [-k 7]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nlexplain"
)

const builtinTable = `Year,Country,City
1896,Greece,Athens
1900,France,Paris
2004,Greece,Athens
2008,China,Beijing
2012,UK,London
2016,Brazil,Rio de Janeiro
`

func main() {
	tablePath := flag.String("table", "", "CSV file with a header row (default: the paper's Olympics example)")
	question := flag.String("question", "Greece held its last Olympics in what year?", "NL question")
	k := flag.Int("k", 7, "number of candidate queries to explain (the paper uses 7)")
	ansi := flag.Bool("ansi", true, "use terminal colors")
	flag.Parse()

	if err := run(*tablePath, *question, *k, *ansi); err != nil {
		fmt.Fprintln(os.Stderr, "wtq-parse:", err)
		os.Exit(1)
	}
}

func run(tablePath, question string, k int, ansi bool) error {
	var t *nlexplain.Table
	var err error
	if tablePath == "" {
		t, err = nlexplain.TableFromCSV("olympics", strings.NewReader(builtinTable))
	} else {
		f, ferr := os.Open(tablePath)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		t, err = nlexplain.TableFromCSV(tablePath, f)
	}
	if err != nil {
		return err
	}

	p := nlexplain.NewParser()
	p.TopK = k
	out, err := nlexplain.ExplainQuestion(p, question, t)
	if err != nil {
		return err
	}

	fmt.Printf("question: %s\n", question)
	fmt.Printf("showing top-%d candidate queries; pick the one matching your intent,\n", len(out))
	fmt.Printf("or None if no candidate is a correct translation.\n")
	for _, ce := range out {
		res, err := nlexplain.ExecuteQuery(ce.Candidate.Query, t)
		result := "error"
		if err == nil {
			result = res.String()
		}
		fmt.Printf("\n--- candidate %d (score %.2f) ---\n", ce.Rank, ce.Candidate.Score)
		fmt.Printf("query:     %s\n", ce.Candidate.Query)
		fmt.Printf("utterance: %s\n", ce.Explanation.Utterance)
		fmt.Printf("result:    %s\n", result)
		if ansi {
			fmt.Print(ce.Explanation.ANSI())
		} else {
			fmt.Print(ce.Explanation.Text())
		}
	}
	if !ansi {
		fmt.Println("\n" + nlexplain.HighlightLegend())
	}
	return nil
}
