// Command wtq-bench generates reproducible query workloads, drives
// them at an explanation engine (in-process or a live wtq-server over
// HTTP) and gates on performance regressions between two runs.
//
// Subcommands:
//
//	run       drive a workload and write a JSON report
//	baseline  run with the CI-canonical settings and write bench_baseline.json
//	compare   diff a fresh report against a baseline; exit 1 on regression
//	speedup   time identical big-table queries serial vs morsel-parallel
//	skipgain  time selective big-table range counts with zone-map
//	          skipping off vs on, verify identical answers, and gate on
//	          the high-selectivity speedup
//	chaos     drive seeded fault/recovery cycles against a durable
//	          engine over a fault-injecting filesystem and gate on the
//	          degradation contract (no acked mutation lost, fail-fast
//	          while degraded, recovery within bound)
//
// Examples:
//
//	wtq-bench run -seed 1 -mix superlative -duration 2s -out report.json
//	wtq-bench run -mix bigtable -big-rows 1000000 -ops 64 -out big.json
//	wtq-bench run -mix selective -selectivity 0.001 -ops 200
//	wtq-bench run -mix mixed -ops 600 -target http://localhost:8080
//	wtq-bench baseline
//	wtq-bench compare -max-p99-ratio 1.5 bench_baseline.json report.json
//	wtq-bench speedup -rows 1000000 -exec-workers 8 -summary perf_summary.txt
//	wtq-bench skipgain -rows 1000000 -min-gain 3 -summary perf_summary.txt
//	wtq-bench chaos -seed 7 -cycles 25 -recovery-bound 10s
//
// The mixed mix (the CI gate) includes the churn family: each churn op
// exercises the full table lifecycle (register, explain, PATCH-append,
// answer, DELETE) against the versioned store, with response version
// stamps cross-checked so a stale cache or torn snapshot fails the op.
//
// The generated query set is a pure function of (seed, mix): the same
// seed yields byte-identical queries on any machine, and each report
// records the op-set hash so compare refuses to diff reports from
// different generators. CI (.github/workflows/ci.yml, job perf-gate)
// runs `run` + `compare` against the checked-in bench_baseline.json
// with generous tolerances — the gate exists to catch step-change
// regressions, not scheduler jitter.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"reflect"
	"runtime"
	"strings"
	"time"

	"nlexplain/internal/dcs"
	"nlexplain/internal/engine"
	"nlexplain/internal/minisql"
	"nlexplain/internal/plan"
	"nlexplain/internal/table"
	"nlexplain/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usage = `usage: wtq-bench <run|baseline|compare|speedup|skipgain|chaos> [flags]

  run       drive a workload and write a JSON report
  baseline  run with CI-canonical settings, writing bench_baseline.json
  compare   diff two reports (baseline, current); exit 1 on regression
  speedup   run big-table queries serial vs morsel-parallel, verify
            identical results and report the speedup
  skipgain  run selective big-table range counts with zone-map skipping
            off vs on, verify identical answers and report the gain
  chaos     drive seeded fault/recovery cycles against a durable engine
            and exit 1 if the degradation contract is violated

run 'wtq-bench <subcommand> -h' for flags`

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, usage)
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], runDefaults{seed: 1, mix: "mixed", out: "bench_report.json"}, stdout, stderr)
	case "baseline":
		// The CI-canonical run: op-count bound (not wall-clock bound) so
		// two machines execute the identical op multiset.
		return cmdRun(args[1:], runDefaults{seed: 1, mix: "mixed", ops: 600, workers: 4, out: "bench_baseline.json"}, stdout, stderr)
	case "compare":
		return cmdCompare(args[1:], stdout, stderr)
	case "speedup":
		return cmdSpeedup(args[1:], stdout, stderr)
	case "skipgain":
		return cmdSkipgain(args[1:], stdout, stderr)
	case "chaos":
		return cmdChaos(args[1:], stdout, stderr)
	case "-h", "--help", "help":
		fmt.Fprintln(stdout, usage)
		return 0
	default:
		fmt.Fprintf(stderr, "wtq-bench: unknown subcommand %q\n%s\n", args[0], usage)
		return 2
	}
}

// runDefaults parameterize cmdRun so `baseline` is `run` with the
// CI-canonical settings pre-filled.
type runDefaults struct {
	seed    int64
	mix     string
	ops     int
	workers int
	out     string
}

func cmdRun(args []string, def runDefaults, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", def.seed, "workload seed; same seed -> same queries")
	mixName := fs.String("mix", def.mix, "traffic mix, one of:"+workload.MixSummaries())
	duration := fs.Duration("duration", 0, "wall-clock bound for the run (0 = use -ops)")
	ops := fs.Int("ops", def.ops, "op-count bound for the run (0 = use -duration)")
	genOps := fs.Int("gen-ops", 512, "size of the pregenerated op set the driver cycles through")
	bigRows := fs.Int("big-rows", 0, "row count of the generated big table for bigtable-family mixes (0 = auto)")
	workers := fs.Int("workers", defInt(def.workers, 8), "closed-loop driver concurrency")
	qps := fs.Float64("qps", 0, "open-loop arrival rate (0 = closed loop)")
	opTimeout := fs.Duration("op-timeout", 30*time.Second, "driver-side deadline per op")
	target := fs.String("target", "inproc", `"inproc" or a wtq-server base URL (http://host:port)`)
	out := fs.String("out", def.out, "report output path")
	engineWorkers := fs.Int("engine-workers", 0, "in-process engine worker pool size (0 = GOMAXPROCS)")
	enginePending := fs.Int("engine-pending", 0, "in-process engine admission queue bound (0 = default)")
	engineCache := fs.Int("engine-cache", 0, "in-process engine LRU entries per cache (0 = default)")
	engineTimeout := fs.Duration("engine-timeout", 0, "in-process engine per-query timeout (0 = default)")
	engineStoreBudget := fs.Int64("engine-store-budget", 0, "in-process engine table-store byte budget (0 = unlimited)")
	dataDir := fs.String("data-dir", "", "in-process durable data directory (WAL + segments); empty = in-memory")
	requireMetrics := fs.Bool("require-metrics", false, "fail the run unless the target's /metrics scrape succeeds and is non-empty")
	selectivity := fs.Float64("selectivity", 0, "big_selective match fraction for selective-family mixes (0 = default 0.01)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *duration <= 0 && *ops <= 0 {
		*ops = 512
	}
	mix, ok := workload.MixByName(*mixName)
	if !ok {
		fmt.Fprintf(stderr, "wtq-bench: unknown mix %q (have: %s)\n", *mixName, strings.Join(workload.MixNames(), ", "))
		return 2
	}

	// Mixes drawing bigtable families auto-size TableBig to
	// workload.DefaultBigRows unless -big-rows overrides.
	rows := *bigRows
	if rows <= 0 && mix.NeedsBig() {
		rows = workload.DefaultBigRows
	}
	corpus := workload.NewCorpusSized(*seed, rows)
	gen := workload.NewGenerator(*seed, mix, corpus)
	if *selectivity > 0 {
		gen.SetSelectivity(*selectivity)
	}
	opSet := gen.Ops(*genOps)
	var tgt workload.Target
	if *target == "inproc" {
		e, err := engine.Open(engine.Options{
			Workers:         *engineWorkers,
			MaxPending:      *enginePending,
			CacheSize:       *engineCache,
			QueryTimeout:    *engineTimeout,
			StoreByteBudget: *engineStoreBudget,
			DataDir:         *dataDir,
		})
		if err != nil {
			fmt.Fprintf(stderr, "wtq-bench: opening engine: %v\n", err)
			return 1
		}
		tgt = workload.NewInProcEngine(e)
	} else {
		tgt = workload.NewHTTPTarget(strings.TrimRight(*target, "/"))
	}
	defer tgt.Close()

	rep, err := workload.Run(context.Background(), tgt, corpus, opSet, workload.Options{
		Workers:   *workers,
		Duration:  *duration,
		MaxOps:    *ops,
		QPS:       *qps,
		OpTimeout: *opTimeout,
		Seed:      *seed,
		MixName:   mix.Name,
	})
	if err != nil {
		fmt.Fprintf(stderr, "wtq-bench: %v\n", err)
		return 1
	}
	if *requireMetrics && (rep.Server == nil || rep.Server.Series == 0) {
		fmt.Fprintln(stderr, "wtq-bench: -require-metrics: target /metrics scrape failed or was empty")
		return 1
	}
	fmt.Fprintln(stdout, rep.Summary())
	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fmt.Fprintf(stderr, "wtq-bench: writing report: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "report written to %s\n", *out)
	}
	return 0
}

func defInt(v, d int) int {
	if v > 0 {
		return v
	}
	return d
}

func cmdCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	maxP50 := fs.Float64("max-p50-ratio", 0, "max current/baseline p50 latency ratio (0 = default 1.5)")
	maxP99 := fs.Float64("max-p99-ratio", 0, "max current/baseline p99 latency ratio (0 = default 1.5)")
	minTput := fs.Float64("min-throughput-ratio", 0, "min current/baseline throughput ratio (0 = default 0.5)")
	maxErr := fs.Float64("max-error-rate-delta", 0, "max absolute error-rate increase (0 = default 0.02)")
	maxShed := fs.Float64("max-shed-rate-delta", 0, "max absolute shed+timeout-rate increase (0 = default 0.02)")
	maxCache := fs.Float64("max-cache-hit-drop", 0, "max absolute cache-hit-ratio drop (0 = default 0.15)")
	maxAllocs := fs.Float64("max-allocs-ratio", 0, "max current/baseline allocs-per-op ratio (0 = default 1.5)")
	minRows := fs.Float64("min-rows-ratio", 0, "min current/baseline scan rows/sec ratio, checked when the baseline has one (0 = default 0.5)")
	minSkipped := fs.Int64("min-morsels-skipped", 0, "min skipped-morsel count in the current run, proving zone-map skipping engaged (0 = not checked)")
	summary := fs.String("summary", "", "write a benchstat-style old-vs-new metric table to this file")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: wtq-bench compare [flags] baseline.json current.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	base, err := workload.ReadReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "wtq-bench: baseline: %v\n", err)
		return 2
	}
	cur, err := workload.ReadReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "wtq-bench: current: %v\n", err)
		return 2
	}
	tol := workload.Tolerances{
		MaxP50Ratio:        *maxP50,
		MaxP99Ratio:        *maxP99,
		MinThroughputRatio: *minTput,
		MaxErrorRateDelta:  *maxErr,
		MaxShedRateDelta:   *maxShed,
		MaxCacheHitDrop:    *maxCache,
		MaxAllocsRatio:     *maxAllocs,
		MinRowsRateRatio:   *minRows,
		MinMorselsSkipped:  *minSkipped,
	}
	vs := workload.Compare(base, cur, tol)
	fmt.Fprintf(stdout, "baseline: %s\ncurrent:  %s\n", summaryLine(base), summaryLine(cur))
	if *summary != "" {
		if err := os.WriteFile(*summary, []byte(workload.FormatComparison(base, cur)), 0o644); err != nil {
			fmt.Fprintf(stderr, "wtq-bench: writing summary: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "old-vs-new summary written to %s\n", *summary)
	}
	if len(vs) == 0 {
		fmt.Fprintln(stdout, "OK: no performance regression beyond tolerances")
		return 0
	}
	fmt.Fprintf(stdout, "FAIL: %d regression(s):\n%s\n", len(vs), workload.FormatViolations(vs))
	return 1
}

// cmdSpeedup times identical compiled queries over a generated big
// table twice — once with the morsel-parallel executor pinned to one
// worker (serial) and once with -exec-workers workers — verifies the
// two runs produce bitwise-identical answers and witness cells, and
// reports the per-family speedup. The numbers are honest about the
// host: GOMAXPROCS is recorded alongside, and on a single-CPU machine
// the expected speedup is ~1x (the parallel path still runs, it just
// timeslices). CI appends the output to perf_summary.txt.
func cmdSpeedup(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("speedup", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "corpus seed; same seed -> same big table")
	rows := fs.Int("rows", 1_000_000, "row count of the generated big table")
	execWorkers := fs.Int("exec-workers", 8, "executor worker count for the parallel runs")
	iters := fs.Int("iters", 3, "timed iterations per configuration (best-of)")
	summary := fs.String("summary", "", "append the speedup report to this file")
	minSpeedup := fs.Float64("min-speedup", 0,
		"fail unless every family reaches this speedup (0 = report only; >1 is only meaningful on multi-CPU hosts)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	corpus := workload.NewCorpusSized(*seed, *rows)
	tab, ok := corpus.Table(workload.TableBig)
	if !ok {
		fmt.Fprintln(stderr, "wtq-bench: sized corpus has no big table")
		return 1
	}

	// One representative query per bigtable family, built as ASTs so
	// the measurement isolates plan execution (no parse in the loop).
	families := []struct {
		name string
		expr dcs.Expr
	}{
		// != takes the posting-list complement scan — an O(rows) kernel
		// on both paths. Ordered comparisons would answer from the
		// sorted column index (sublinear, never parallel) and measure
		// nothing.
		{"filter", &dcs.Aggregate{Fn: dcs.Count, Arg: &dcs.Compare{Column: "Games", Op: dcs.Ne, V: table.NumberValue(500_000)}}},
		// The record set is restricted to roughly half the table so the
		// argmax takes the subset scan path rather than the full-table
		// sorted-index fast path, which would measure nothing.
		{"superlative", &dcs.ColumnValues{Column: "Nation", Records: &dcs.ArgRecords{
			Max: true, Column: "Year",
			Records: &dcs.Compare{Column: "Games", Op: dcs.Ge, V: table.NumberValue(500_000)},
		}}},
		// Two cardinality regimes: Year projects to ~40 distinct values
		// (the dedup shrinks in the morsels, the merge is trivial);
		// Games projects to ~n distinct (the serial dedup-merge
		// dominates — the parallel path's worst case).
		{"agg_narrow", &dcs.Aggregate{Fn: dcs.Sum, Arg: &dcs.ColumnValues{Column: "Year", Records: &dcs.AllRecords{}}}},
		{"agg_wide", &dcs.Aggregate{Fn: dcs.Sum, Arg: &dcs.ColumnValues{Column: "Games", Records: &dcs.AllRecords{}}}},
	}

	// best runs a compiled query iters times (plus one warm-up) under
	// the current executor configuration and returns the last result
	// with the best wall time.
	best := func(c *dcs.Compiled) (*dcs.Result, time.Duration, error) {
		res, err := c.ExecuteWith(tab, plan.Capture{})
		if err != nil {
			return nil, 0, err
		}
		bestD := time.Duration(math.MaxInt64)
		for i := 0; i < *iters; i++ {
			start := time.Now()
			res, err = c.ExecuteWith(tab, plan.Capture{})
			if err != nil {
				return nil, 0, err
			}
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return res, bestD, nil
	}

	var b strings.Builder
	fmt.Fprintf(&b, "speedup: rows=%d exec-workers=%d gomaxprocs=%d iters=%d\n",
		tab.NumRows(), *execWorkers, runtime.GOMAXPROCS(0), *iters)

	prevWorkers := plan.SetExecWorkers(1)
	defer plan.SetExecWorkers(prevWorkers)
	worst := math.Inf(1)
	for _, fam := range families {
		c, err := dcs.Compile(fam.expr, tab)
		if err != nil {
			fmt.Fprintf(stderr, "wtq-bench: compiling %s query: %v\n", fam.name, err)
			return 1
		}
		// Warm both configurations first (lazy column indexes, pool
		// growth), then settle the heap before each timed phase so the
		// first phase doesn't absorb the corpus-construction GC debt.
		for _, w := range []int{1, *execWorkers} {
			plan.SetExecWorkers(w)
			if _, err := c.ExecuteWith(tab, plan.Capture{}); err != nil {
				fmt.Fprintf(stderr, "wtq-bench: warming %s query: %v\n", fam.name, err)
				return 1
			}
		}
		runtime.GC()
		plan.SetExecWorkers(1)
		serialRes, serialD, err := best(c)
		if err != nil {
			fmt.Fprintf(stderr, "wtq-bench: serial %s run: %v\n", fam.name, err)
			return 1
		}
		runtime.GC()
		plan.SetExecWorkers(*execWorkers)
		_, _, morselsBefore := plan.ExecStats()
		parRes, parD, err := best(c)
		_, _, morselsAfter := plan.ExecStats()
		if err != nil {
			fmt.Fprintf(stderr, "wtq-bench: parallel %s run: %v\n", fam.name, err)
			return 1
		}
		if !reflect.DeepEqual(serialRes, parRes) {
			fmt.Fprintf(stderr, "wtq-bench: %s: parallel result differs from serial (answers or witness cells)\n", fam.name)
			return 1
		}
		sp := float64(serialD) / float64(parD)
		if sp < worst {
			worst = sp
		}
		fmt.Fprintf(&b, "  %-12s serial=%-10s parallel=%-10s speedup=%.2fx rows/sec=%.0f morsels=%d identical=true\n",
			fam.name, serialD.Round(time.Microsecond), parD.Round(time.Microsecond),
			sp, float64(tab.NumRows())/parD.Seconds(), morselsAfter-morselsBefore)
	}

	fmt.Fprint(stdout, b.String())
	if *summary != "" {
		f, err := os.OpenFile(*summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err == nil {
			_, err = f.WriteString("\n" + b.String())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "wtq-bench: writing summary: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "speedup report appended to %s\n", *summary)
	}
	if *minSpeedup > 0 && worst < *minSpeedup {
		fmt.Fprintf(stdout, "FAIL: worst-family speedup %.2fx below required %.2fx\n", worst, *minSpeedup)
		return 1
	}
	return 0
}

// cmdSkipgain measures what the zone-map layer is for: identical fused
// range counts over the big table's monotone Seq column are timed with
// zone-map skipping disabled (every morsel scanned) and enabled (zones
// prove morsels row-free or all-match), answers are verified identical,
// and the speedup is reported per probe. The gated probes are the
// high-selectivity ones — a narrow sel·n-row range and a point lookup —
// where skipping must also demonstrably engage (skipped-morsel counter
// moves). The wide low-selectivity control is reported but never gated:
// its morsels genuinely hold rows, so the best zones can do there is
// the bulk-fill shortcut (~1x wall clock). CI appends the output to the
// perf-gate summary artifact.
func cmdSkipgain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("skipgain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "corpus seed; same seed -> same big table")
	rows := fs.Int("rows", 1_000_000, "row count of the generated big table")
	selectivity := fs.Float64("selectivity", workload.DefaultSelectivity, "match fraction of the high-selectivity probes")
	iters := fs.Int("iters", 3, "timed iterations per configuration (best-of)")
	summary := fs.String("summary", "", "append the skipgain report to this file")
	minGain := fs.Float64("min-gain", 0,
		"fail unless every high-selectivity probe reaches this zones-on vs zones-off speedup (0 = report only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	corpus := workload.NewCorpusSized(*seed, *rows)
	tab, ok := corpus.Table(workload.TableBig)
	if !ok {
		fmt.Fprintln(stderr, "wtq-bench: sized corpus has no big table")
		return 1
	}
	n := tab.NumRows()
	span := int(*selectivity * float64(n))
	if span < 1 {
		span = 1
	}

	probes := []struct {
		name   string
		lo, hi int
		gated  bool
	}{
		{"narrow", (n - span) / 2, (n-span)/2 + span - 1, true},
		{"point", n / 2, n / 2, true},
		{"wide", 0, n - span - 1, false},
	}

	prevZones := plan.SetZoneSkipping(true)
	defer plan.SetZoneSkipping(prevZones)

	best := func(q minisql.Query) (*minisql.Rows, time.Duration, error) {
		res, err := minisql.Exec(q, tab)
		if err != nil {
			return nil, 0, err
		}
		bestD := time.Duration(math.MaxInt64)
		for i := 0; i < *iters; i++ {
			start := time.Now()
			res, err = minisql.Exec(q, tab)
			if err != nil {
				return nil, 0, err
			}
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return res, bestD, nil
	}

	var b strings.Builder
	fmt.Fprintf(&b, "skipgain: rows=%d selectivity=%g zone-rows=%d iters=%d\n",
		n, *selectivity, table.ZoneRows, *iters)

	worst := math.Inf(1)
	for _, p := range probes {
		src := fmt.Sprintf("SELECT COUNT(Index) FROM T WHERE Seq >= %d AND Seq <= %d", p.lo, p.hi)
		q, err := minisql.Parse(src)
		if err != nil {
			fmt.Fprintf(stderr, "wtq-bench: parsing %s probe: %v\n", p.name, err)
			return 1
		}
		// Warm both configurations (the zone-map build is lazy), then
		// settle the heap so neither timed phase absorbs GC debt.
		for _, on := range []bool{false, true} {
			plan.SetZoneSkipping(on)
			if _, err := minisql.Exec(q, tab); err != nil {
				fmt.Fprintf(stderr, "wtq-bench: warming %s probe: %v\n", p.name, err)
				return 1
			}
		}
		runtime.GC()
		plan.SetZoneSkipping(false)
		offRes, offD, err := best(q)
		if err != nil {
			fmt.Fprintf(stderr, "wtq-bench: zones-off %s run: %v\n", p.name, err)
			return 1
		}
		runtime.GC()
		plan.SetZoneSkipping(true)
		skipBefore, cutBefore := plan.SkipStats()
		onRes, onD, err := best(q)
		skipAfter, cutAfter := plan.SkipStats()
		if err != nil {
			fmt.Fprintf(stderr, "wtq-bench: zones-on %s run: %v\n", p.name, err)
			return 1
		}
		if !reflect.DeepEqual(offRes, onRes) {
			fmt.Fprintf(stderr, "wtq-bench: %s: zones-on answer differs from zones-off\n", p.name)
			return 1
		}
		if p.gated && skipAfter == skipBefore {
			fmt.Fprintf(stderr, "wtq-bench: %s: zone skipping never engaged (skipped-morsel counter did not move)\n", p.name)
			return 1
		}
		gain := float64(offD) / float64(onD)
		if p.gated && gain < worst {
			worst = gain
		}
		fmt.Fprintf(&b, "  %-8s rows=[%d,%d] zones-off=%-10s zones-on=%-10s gain=%.2fx skipped=%d bulk=%d identical=true\n",
			p.name, p.lo, p.hi, offD.Round(time.Microsecond), onD.Round(time.Microsecond),
			gain, skipAfter-skipBefore, cutAfter-cutBefore)
	}

	fmt.Fprint(stdout, b.String())
	if *summary != "" {
		f, err := os.OpenFile(*summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err == nil {
			_, err = f.WriteString("\n" + b.String())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "wtq-bench: writing summary: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "skipgain report appended to %s\n", *summary)
	}
	if *minGain > 0 && worst < *minGain {
		fmt.Fprintf(stdout, "FAIL: worst high-selectivity gain %.2fx below required %.2fx\n", worst, *minGain)
		return 1
	}
	return 0
}

func cmdChaos(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "chaos seed; same seed -> same mutations and fault schedules")
	cycles := fs.Int("cycles", 10, "fault/recovery episodes to drive")
	dir := fs.String("dir", "", "engine data directory (default: a fresh temp dir, removed on success)")
	bound := fs.Duration("recovery-bound", 30*time.Second, "fail an episode whose recovery takes longer")
	muts := fs.Int("mutations", 6, "healthy mutations per cycle")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	dataDir := *dir
	if dataDir == "" {
		tmp, err := os.MkdirTemp("", "wtq-chaos-*")
		if err != nil {
			fmt.Fprintf(stderr, "wtq-bench: temp dir: %v\n", err)
			return 1
		}
		defer os.RemoveAll(tmp)
		dataDir = tmp
	}

	rep, err := workload.RunChaos(workload.ChaosOptions{
		Seed:              *seed,
		Cycles:            *cycles,
		Dir:               dataDir,
		RecoveryBound:     *bound,
		MutationsPerCycle: *muts,
	})
	if err != nil {
		fmt.Fprintf(stderr, "wtq-bench: chaos: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, rep)
	if len(rep.Violations) != 0 {
		fmt.Fprintf(stdout, "FAIL: %d contract violation(s)\n", len(rep.Violations))
		return 1
	}
	return 0
}

func summaryLine(r *workload.Report) string {
	return fmt.Sprintf("mix=%s seed=%d ops=%d p50=%.3fms p99=%.3fms tput=%.1f/s err=%d shed=%d allocs/op=%.0f",
		r.Mix, r.Seed, r.TotalOps, r.Latency.P50Ms, r.Latency.P99Ms, r.Throughput, r.Errors, r.Sheds, r.AllocsPerOp)
}
