package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nlexplain/internal/workload"
)

// runBench invokes the CLI in-process and returns (exit, stdout, stderr).
func runBench(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunWritesDeterministicReport(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	for _, path := range []string{a, b} {
		code, stdout, stderr := runBench(t,
			"run", "-seed", "1", "-mix", "superlative", "-ops", "64", "-gen-ops", "32", "-workers", "2", "-out", path)
		if code != 0 {
			t.Fatalf("run exited %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
		}
		if !strings.Contains(stdout, "report written to "+path) {
			t.Fatalf("run did not announce the report path:\n%s", stdout)
		}
	}
	ra, err := workload.ReadReport(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := workload.ReadReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.OpSetHash != rb.OpSetHash {
		t.Fatalf("same seed produced different op sets: %s vs %s", ra.OpSetHash, rb.OpSetHash)
	}
	if ra.TotalOps != 64 || rb.TotalOps != 64 {
		t.Fatalf("op counts differ from -ops: %d, %d", ra.TotalOps, rb.TotalOps)
	}
	if ra.Latency.P50Ms <= 0 || ra.Latency.P99Ms <= 0 {
		t.Fatalf("report lacks latency quantiles: %+v", ra.Latency)
	}
	// Sheds/timeouts are zero on this gentle run but the fields (and
	// class counts) must be present in the serialized report.
	raw, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"p50_ms"`, `"p99_ms"`, `"sheds"`, `"timeouts"`, `"errors"`, `"counts"`, `"op_set_hash"`} {
		if !bytes.Contains(raw, []byte(key)) {
			t.Fatalf("report JSON lacks %s:\n%s", key, raw)
		}
	}
}

func TestCompareDetectsInflatedP99(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	code, _, stderr := runBench(t,
		"run", "-seed", "1", "-mix", "mixed", "-ops", "96", "-gen-ops", "48", "-workers", "2", "-out", base)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr)
	}

	// Identical reports: no regression.
	code, stdout, _ := runBench(t, "compare", base, base)
	if code != 0 || !strings.Contains(stdout, "OK") {
		t.Fatalf("self-compare exited %d:\n%s", code, stdout)
	}

	// Inflate p99 beyond tolerance: must exit non-zero.
	rep, err := workload.ReadReport(base)
	if err != nil {
		t.Fatal(err)
	}
	rep.Latency.P99Ms = rep.Latency.P99Ms*10 + 100
	inflated := filepath.Join(dir, "inflated.json")
	buf, _ := json.Marshal(rep)
	if err := os.WriteFile(inflated, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runBench(t, "compare", base, inflated)
	if code != 1 {
		t.Fatalf("inflated p99 compare exited %d, want 1:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "latency_p99_ms") {
		t.Fatalf("violation does not name p99:\n%s", stdout)
	}

	// Generous tolerance flag waves the same report through.
	code, stdout, _ = runBench(t, "compare", "-max-p99-ratio", "1e9", base, inflated)
	if code != 0 {
		t.Fatalf("tolerant compare exited %d:\n%s", code, stdout)
	}
}

func TestCompareRejectsMismatchedRuns(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	if code, _, stderr := runBench(t, "run", "-seed", "1", "-mix", "sql", "-ops", "32", "-gen-ops", "16", "-workers", "2", "-out", a); code != 0 {
		t.Fatalf("run a: %s", stderr)
	}
	if code, _, stderr := runBench(t, "run", "-seed", "2", "-mix", "sql", "-ops", "32", "-gen-ops", "16", "-workers", "2", "-out", b); code != 0 {
		t.Fatalf("run b: %s", stderr)
	}
	code, stdout, _ := runBench(t, "compare", a, b)
	if code != 1 || !strings.Contains(stdout, "run_shape") {
		t.Fatalf("mismatched-seed compare exited %d:\n%s", code, stdout)
	}
}

func TestUsageAndBadSubcommand(t *testing.T) {
	if code, _, _ := runBench(t); code != 2 {
		t.Fatal("bare invocation must exit 2")
	}
	if code, _, stderr := runBench(t, "frobnicate"); code != 2 || !strings.Contains(stderr, "unknown subcommand") {
		t.Fatalf("unknown subcommand handling wrong: %s", stderr)
	}
	if code, _, stderr := runBench(t, "run", "-mix", "nope", "-ops", "1"); code != 2 || !strings.Contains(stderr, "unknown mix") {
		t.Fatalf("unknown mix handling wrong: %s", stderr)
	}
}
