package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunBuiltinTable(t *testing.T) {
	for _, format := range []string{"text", "ansi", "html"} {
		if err := run("", "max(R[Year].Country.Greece)", format); err != nil {
			t.Errorf("run(builtin, %s): %v", format, err)
		}
	}
}

func TestRunCSVFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.csv")
	if err := os.WriteFile(path, []byte("A,B\n1,x\n2,y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "count(B.x)", "text"); err != nil {
		t.Errorf("run(csv): %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "NoColumn.x", "text"); err == nil {
		t.Error("unknown column should fail")
	}
	if err := run("", "max(", "text"); err == nil {
		t.Error("syntax error should fail")
	}
	if err := run("", "Country.Greece", "pdf"); err == nil {
		t.Error("unknown format should fail")
	}
	if err := run("/nonexistent.csv", "Country.Greece", "text"); err == nil {
		t.Error("missing file should fail")
	}
}
