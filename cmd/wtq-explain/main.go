// Command wtq-explain explains a lambda DCS query over a CSV table:
// it prints the query's NL utterance, SQL translation, result and the
// provenance-highlighted table (Section 5 of the paper).
//
// Usage:
//
//	wtq-explain -table data.csv -query 'max(R[Year].Country.Greece)' [-format text|ansi|html]
//
// With no -table, the paper's Figure 1 Olympics table is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nlexplain"
)

const builtinTable = `Year,Country,City
1896,Greece,Athens
1900,France,Paris
2004,Greece,Athens
2008,China,Beijing
2012,UK,London
2016,Brazil,Rio de Janeiro
`

func main() {
	tablePath := flag.String("table", "", "CSV file with a header row (default: the paper's Olympics example)")
	querySrc := flag.String("query", "max(R[Year].Country.Greece)", "lambda DCS query")
	format := flag.String("format", "ansi", "output format: text, ansi or html")
	flag.Parse()

	if err := run(*tablePath, *querySrc, *format); err != nil {
		fmt.Fprintln(os.Stderr, "wtq-explain:", err)
		os.Exit(1)
	}
}

func run(tablePath, querySrc, format string) error {
	var t *nlexplain.Table
	var err error
	if tablePath == "" {
		t, err = nlexplain.TableFromCSV("olympics", strings.NewReader(builtinTable))
	} else {
		f, ferr := os.Open(tablePath)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		t, err = nlexplain.TableFromCSV(tablePath, f)
	}
	if err != nil {
		return err
	}

	q, err := nlexplain.ParseQuery(querySrc)
	if err != nil {
		return err
	}
	res, err := nlexplain.ExecuteQuery(q, t)
	if err != nil {
		return err
	}
	ex, err := nlexplain.Explain(q, t)
	if err != nil {
		return err
	}

	fmt.Printf("query:     %s\n", q)
	fmt.Printf("utterance: %s\n", ex.Utterance)
	if ex.SQL != "" {
		fmt.Printf("sql:       %s\n", ex.SQL)
	}
	fmt.Printf("result:    %s\n\n", res)
	switch format {
	case "text":
		fmt.Print(ex.Text())
		fmt.Println("\n" + nlexplain.HighlightLegend())
	case "ansi":
		fmt.Print(ex.ANSI())
	case "html":
		fmt.Printf("<style>\n%s\n</style>\n%s\n", nlexplain.HighlightCSS(), ex.HTML())
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	return nil
}
