// Command wtq-experiments regenerates the paper's evaluation: every
// table (4, 5, 6, 7, 9, 10) and every figure (1, 3-9, 11-22), printing
// paper values next to measured values.
//
// Usage:
//
//	wtq-experiments                 # all tables + figures, reduced scale
//	wtq-experiments -full           # paper-scale counts (slow)
//	wtq-experiments -table 6        # one table
//	wtq-experiments -figure 9       # one figure
package main

import (
	"flag"
	"fmt"
	"os"

	"nlexplain/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run at the paper's sample sizes (slow)")
	seed := flag.Int64("seed", 2019, "experiment seed")
	tableN := flag.Int("table", 0, "run only this paper table (4,5,6,7,8,9,10)")
	figureN := flag.Int("figure", 0, "render only this paper figure")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Full: *full}

	if *figureN != 0 {
		s, err := experiments.RenderFigure(*figureN)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wtq-experiments:", err)
			os.Exit(1)
		}
		fmt.Println(s)
		return
	}

	if *tableN == 10 {
		fmt.Println(experiments.FormatTable10(experiments.RunTable10()))
		return
	}

	fmt.Println("building experiment environment (dataset + baseline parser training)...")
	env := experiments.NewEnv(cfg)
	fmt.Printf("dataset: %d train / %d test examples on %d + %d disjoint tables\n\n",
		len(env.Dataset.Train), len(env.Dataset.Test),
		len(env.Dataset.TrainTables), len(env.Dataset.TestTables))

	runAll := *tableN == 0
	if runAll || *tableN == 4 {
		fmt.Println(env.RunTable4())
	}
	if runAll || *tableN == 5 {
		fmt.Println(env.RunTable5())
	}
	if runAll || *tableN == 6 {
		fmt.Println(env.RunTable6())
	}
	if runAll || *tableN == 7 {
		fmt.Println(env.RunTable7())
	}
	if runAll || *tableN == 8 {
		fmt.Println(experiments.FormatTable8(env.RunTable8(6)))
	}
	if runAll || *tableN == 9 {
		fmt.Println(env.RunTable9())
	}
	if runAll {
		fmt.Println(experiments.FormatTable10(experiments.RunTable10()))
		for _, n := range experiments.FigureNumbers() {
			s, err := experiments.RenderFigure(n)
			if err != nil {
				continue
			}
			fmt.Println(s)
		}
	}
}
