package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"

	"nlexplain"
	"nlexplain/internal/fault"
	"nlexplain/internal/retry"
)

// newDegradableServer builds a durable test server over an InjectFS so
// tests can seal the WAL from outside and watch the HTTP surface
// degrade and recover.
func newDegradableServer(t *testing.T) (*httptest.Server, *fault.InjectFS) {
	t.Helper()
	fs := fault.NewInject(fault.OS, 1)
	e, err := nlexplain.OpenEngine(nlexplain.EngineOptions{
		Workers:            2,
		DataDir:            t.TempDir(),
		WALSyncWindow:      -1,
		CheckpointInterval: -1,
		FS:                 fs,
		RecoveryBackoff:    retry.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("OpenEngine: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	ts := httptest.NewServer(newMux(e, muxConfig{}))
	t.Cleanup(ts.Close)
	return ts, fs
}

// TestServerDegradedEnvelope drives the whole degraded episode over
// HTTP: mutations map to 503 + code "unavailable" + Retry-After (not
// 500/internal), healthz flips to 503 {"status":"degraded"}, reads
// keep answering, and after healing both return to normal.
func TestServerDegradedEnvelope(t *testing.T) {
	ts, fs := newDegradableServer(t)
	registerOlympics(t, ts)

	fs.SetRules(&fault.Rule{Op: fault.OpWrite, Path: "wal-*.log", Count: fault.Sticky, Err: syscall.EIO})

	// First faulted mutation and the fail-fast one after it: both 503
	// with the stable "unavailable" code and a Retry-After header.
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/tables", map[string]any{
			"name":    "victim",
			"columns": []string{"A"},
			"rows":    [][]string{{"1"}},
		})
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("mutation %d: status %d, want 503: %s", i, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("mutation %d: missing Retry-After header", i)
		}
		var envelope struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &envelope); err != nil {
			t.Fatalf("mutation %d: bad envelope %s: %v", i, body, err)
		}
		if envelope.Error.Code != "unavailable" || envelope.Error.Message == "" {
			t.Fatalf("mutation %d: envelope = %+v, want code unavailable", i, envelope)
		}
	}

	// Appends map the same way.
	resp, _ := doJSON(t, "PATCH", ts.URL+"/v1/tables/olympics", map[string]any{
		"rows": [][]string{{"2016", "Rio", "Brazil", "207"}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("degraded append: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Healthz drains the node.
	resp, body := getJSON(t, ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz: status %d: %s", resp.StatusCode, body)
	}
	var health struct {
		Status string `json:"status"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.Reason == "" {
		t.Fatalf("degraded healthz = %+v", health)
	}

	// Reads still serve.
	resp, body = postJSON(t, ts.URL+"/v1/explain", map[string]any{
		"table": "olympics", "query": "count(City.Athens)",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded read: status %d: %s", resp.StatusCode, body)
	}

	// Heal and wait for the recovery loop to lift read-only mode.
	fs.Heal()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ = getJSON(t, ts.URL+"/v1/healthz")
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz still degraded 5s after heal")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Mutations work again.
	resp, body = postJSON(t, ts.URL+"/v1/tables", map[string]any{
		"name":    "victim",
		"columns": []string{"A"},
		"rows":    [][]string{{"1"}},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-recovery register: status %d: %s", resp.StatusCode, body)
	}
}
