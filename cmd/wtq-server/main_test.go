package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"nlexplain"
)

func newTestServer(t *testing.T) (*httptest.Server, *nlexplain.Engine) {
	t.Helper()
	return newTestServerCapped(t, 0)
}

// newTestServerCapped builds a test server with an explicit table
// payload cap (0 = the default 8 MiB).
func newTestServerCapped(t *testing.T, maxTableBytes int64) (*httptest.Server, *nlexplain.Engine) {
	t.Helper()
	e := nlexplain.NewEngine(nlexplain.EngineOptions{Workers: 4})
	ts := httptest.NewServer(newMux(e, muxConfig{maxTableBytes: maxTableBytes}))
	t.Cleanup(ts.Close)
	return ts, e
}

// doJSON issues a request with an arbitrary method (PATCH, DELETE)
// and a JSON body.
func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func registerOlympics(t *testing.T, ts *httptest.Server) {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/v1/tables", map[string]any{
		"name":    "olympics",
		"columns": []string{"Year", "City", "Country", "Nations"},
		"rows": [][]string{
			{"1896", "Athens", "Greece", "14"},
			{"1900", "Paris", "France", "24"},
			{"1904", "St. Louis", "USA", "12"},
			{"2004", "Athens", "Greece", "201"},
			{"2008", "Beijing", "China", "204"},
			{"2012", "London", "UK", "204"},
		},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d: %s", resp.StatusCode, body)
	}
}

func TestRegisterTableEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	registerOlympics(t, ts)

	resp, body := getJSON(t, ts.URL+"/v1/tables")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d", resp.StatusCode)
	}
	var list struct {
		Tables []nlexplain.TableInfo `json:"tables"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Tables) != 1 || list.Tables[0].Name != "olympics" || list.Tables[0].Rows != 6 {
		t.Errorf("tables = %+v", list.Tables)
	}

	// CSV payload path.
	resp, body = postJSON(t, ts.URL+"/v1/tables", map[string]any{
		"name": "medals",
		"csv":  "Country,Gold\nGreece,4\nFrance,5\n",
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("csv register: status %d: %s", resp.StatusCode, body)
	}

	// Bad payloads.
	if resp, _ = postJSON(t, ts.URL+"/v1/tables", map[string]any{"columns": []string{"A"}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing name: status %d", resp.StatusCode)
	}
	if resp, _ = postJSON(t, ts.URL+"/v1/tables", map[string]any{"name": "x", "columns": []string{"A"}, "rows": [][]string{{"1", "2"}}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ragged rows: status %d", resp.StatusCode)
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	registerOlympics(t, ts)

	resp, body := postJSON(t, ts.URL+"/v1/explain", map[string]any{
		"table": "olympics",
		"query": "max(R[Year].Country.Greece)",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Query     string `json:"query"`
		Utterance string `json:"utterance"`
		SQL       string `json:"sql"`
		Result    string `json:"result"`
		Cached    bool   `json:"cached"`
		Grid      struct {
			Headers []string `json:"headers"`
			Cells   [][]struct {
				Text    string `json:"text"`
				Marking string `json:"marking"`
			} `json:"cells"`
		} `json:"grid"`
		Provenance struct {
			Output      []map[string]int  `json:"output"`
			Execution   []map[string]int  `json:"execution"`
			Columns     []map[string]int  `json:"columns"`
			HeaderAggrs map[string]string `json:"header_aggrs"`
		} `json:"provenance"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
	if out.Result != "2004" {
		t.Errorf("result = %q, want 2004", out.Result)
	}
	if out.Utterance == "" {
		t.Error("empty utterance")
	}
	if out.Cached {
		t.Error("first explain should not be cached")
	}
	if len(out.Provenance.Output) == 0 || len(out.Provenance.Execution) == 0 || len(out.Provenance.Columns) == 0 {
		t.Errorf("provenance incomplete: %+v", out.Provenance)
	}
	if out.Provenance.HeaderAggrs["Year"] != "max" {
		t.Errorf("header aggrs = %v", out.Provenance.HeaderAggrs)
	}
	marked := 0
	for _, row := range out.Grid.Cells {
		for _, c := range row {
			if c.Marking != "" {
				marked++
			}
		}
	}
	if marked == 0 {
		t.Error("no highlighted cells on the wire")
	}

	// Second identical request is a cache hit.
	resp, body = postJSON(t, ts.URL+"/v1/explain", map[string]any{
		"table": "olympics",
		"query": "max(R[Year].Country.Greece)",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Cached {
		t.Error("repeat explain should be cached")
	}

	// Error statuses.
	if resp, _ = postJSON(t, ts.URL+"/v1/explain", map[string]any{"table": "nope", "query": "count(City.Athens)"}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown table: status %d, want 404", resp.StatusCode)
	}
	if resp, _ = postJSON(t, ts.URL+"/v1/explain", map[string]any{"table": "olympics", "query": "max(((("}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query: status %d, want 400", resp.StatusCode)
	}
	// A query whose text merely contains "unknown table" is a parse
	// error on an existing table: 400, not 404.
	if resp, _ = postJSON(t, ts.URL+"/v1/explain", map[string]any{"table": "olympics", "query": "unknown table"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("query containing 'unknown table': status %d, want 400", resp.StatusCode)
	}
}

func TestExplainBatchEndpoint(t *testing.T) {
	ts, e := newTestServer(t)
	registerOlympics(t, ts)

	queries := []map[string]any{
		{"table": "olympics", "query": "max(R[Year].Country.Greece)"},
		{"table": "olympics", "query": "min(R[Year].Record)"},
		{"table": "olympics", "query": "count(Country.Greece)"},
		{"table": "olympics", "query": "sum(R[Nations].Record)"},
		{"table": "olympics", "query": "avg(R[Nations].Record)"},
		{"table": "olympics", "query": "max(R[Year].Record)"},
		{"table": "olympics", "query": "count(City.Athens)"},
		{"table": "olympics", "query": "min(R[Nations].Country.USA)"},
	}
	resp, body := postJSON(t, ts.URL+"/v1/explain/batch", map[string]any{"queries": queries})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Results []struct {
			Explanation *struct {
				Query  string `json:"query"`
				Result string `json:"result"`
			} `json:"explanation"`
			Cached bool   `json:"cached"`
			Error  string `json:"error"`
		} `json:"results"`
		Errors int `json:"errors"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(queries) || out.Errors != 0 {
		t.Fatalf("results = %d (errors %d), want %d/0: %s", len(out.Results), out.Errors, len(queries), body)
	}
	for i, r := range out.Results {
		if r.Explanation == nil || r.Explanation.Result == "" {
			t.Errorf("result %d empty: %+v", i, r)
		}
	}

	// Repeat the batch: every result must come from cache and the
	// engine must report hits.
	resp, body = postJSON(t, ts.URL+"/v1/explain/batch", map[string]any{"queries": queries})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	for i, r := range out.Results {
		if !r.Cached {
			t.Errorf("repeat result %d not cached", i)
		}
	}
	if s := e.Stats(); s.ResultHits == 0 {
		t.Error("engine reports no cache hits after repeated batch")
	}

	// A batch mixing good and bad queries reports per-item errors.
	mixed := append(queries[:2:2], map[string]any{"table": "olympics", "query": "max(((("})
	resp, body = postJSON(t, ts.URL+"/v1/explain/batch", map[string]any{"queries": mixed})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Errors != 1 || out.Results[2].Error == "" {
		t.Errorf("mixed batch errors = %d, item err %q", out.Errors, out.Results[2].Error)
	}

	if resp, _ = postJSON(t, ts.URL+"/v1/explain/batch", map[string]any{"queries": []any{}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
}

func TestParseEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	registerOlympics(t, ts)

	resp, body := postJSON(t, ts.URL+"/v1/parse", map[string]any{
		"table":    "olympics",
		"question": "in which year were the olympics held in Athens?",
		"top_k":    5,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Question   string                      `json:"question"`
		Candidates []nlexplain.RankedCandidate `json:"candidates"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Candidates) == 0 || len(out.Candidates) > 5 {
		t.Fatalf("candidates = %d, want 1..5", len(out.Candidates))
	}
	for i, c := range out.Candidates {
		if c.Rank != i+1 || c.Query == "" || c.Utterance == "" {
			t.Errorf("candidate %d malformed: %+v", i, c)
		}
	}

	if resp, _ = postJSON(t, ts.URL+"/v1/parse", map[string]any{"table": "nope", "question": "hi"}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown table: status %d, want 404", resp.StatusCode)
	}
}

func TestHealthzAndStats(t *testing.T) {
	ts, _ := newTestServer(t)
	registerOlympics(t, ts)

	resp, body := getJSON(t, ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
		Tables int    `json:"tables"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Tables != 1 {
		t.Errorf("healthz = %+v", health)
	}

	postJSON(t, ts.URL+"/v1/explain", map[string]any{"table": "olympics", "query": "count(City.Athens)"})
	resp, body = getJSON(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var stats nlexplain.EngineStats
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Tables != 1 || stats.Executions == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestConcurrentExplainRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	registerOlympics(t, ts)

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := range 32 {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := []string{"max(R[Year].Record)", "count(City.Athens)", "sum(R[Nations].Record)", "min(R[Year].Country.Greece)"}[i%4]
			resp, body := postJSON(t, ts.URL+"/v1/explain", map[string]any{"table": "olympics", "query": q})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("query %q: status %d: %s", q, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/explain")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/explain: status %d, want 405", resp.StatusCode)
	}
}
