package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCrashRecovery is the crash-recovery CI shard: it SIGKILLs a real
// wtq-server mid-churn, in a loop, and after every kill restarts it on
// the same data directory and proves the durability contract — every
// table whose last mutation was acknowledged recovers with the
// identical content-hash version and generation, and the store
// generation resumes at or past the highest acknowledged one.
//
// The test is opt-in (WTQ_CRASH=1): it builds and spawns real
// processes and runs for seconds, which does not belong in the tier-1
// suite. WTQ_CRASH_DIR overrides the data directory so CI can upload
// it as an artifact when the test fails; WTQ_CRASH_ITERS overrides the
// kill count.
func TestCrashRecovery(t *testing.T) {
	if os.Getenv("WTQ_CRASH") == "" {
		t.Skip("set WTQ_CRASH=1 to run the crash-recovery shard")
	}
	bin := filepath.Join(t.TempDir(), "wtq-server")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building server: %v\n%s", err, out)
	}
	dataDir := os.Getenv("WTQ_CRASH_DIR")
	if dataDir == "" {
		dataDir = filepath.Join(t.TempDir(), "data")
	}
	iters := 3
	if s := os.Getenv("WTQ_CRASH_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("WTQ_CRASH_ITERS=%q: %v", s, err)
		}
		iters = n
	}

	h := &crashHarness{
		t:       t,
		bin:     bin,
		dataDir: dataDir,
		client:  &http.Client{Timeout: 5 * time.Second},
		acked:   make(map[string]ackedState),
		rng:     rand.New(rand.NewSource(1)),
	}
	srv := h.start()
	for i := 0; i < iters; i++ {
		churn := time.Duration(200+h.rng.Intn(400)) * time.Millisecond
		h.churn(srv, churn)
		t.Logf("iteration %d: SIGKILL after %v of churn (%d acked mutations)", i, churn, h.maxGen)
		srv.kill()
		srv = h.start() // restart on the same data dir = recovery
		h.verify(srv)
	}
	srv.kill()
}

// ackedState is what the durability contract owes one table: the last
// acknowledged snapshot's identity, or its acknowledged absence.
type ackedState struct {
	present bool
	version string
	gen     uint64
}

type crashHarness struct {
	t       *testing.T
	bin     string
	dataDir string
	client  *http.Client
	rng     *rand.Rand

	mu     sync.Mutex
	acked  map[string]ackedState
	inDark map[string]bool // op sent, response never seen (killed in flight)
	maxGen uint64
}

type serverProc struct {
	cmd  *exec.Cmd
	base string
}

func (s *serverProc) kill() {
	s.cmd.Process.Kill()
	s.cmd.Wait()
}

// start launches the server on :0 against the shared data dir and
// parses the resolved address from its startup log line.
func (h *crashHarness) start() *serverProc {
	h.t.Helper()
	cmd := exec.Command(h.bin,
		"-addr", "127.0.0.1:0",
		"-data-dir", h.dataDir,
		"-checkpoint-interval", "300ms",
		"-checkpoint-bytes", "65536",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		h.t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		h.t.Fatalf("starting server: %v", err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j > 0 {
					rest = rest[:j]
				}
				select {
				case addrc <- rest:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return &serverProc{cmd: cmd, base: "http://" + addr}
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		h.t.Fatal("server did not log its listen address — recovery hung or failed")
		return nil
	}
}

// churn hammers the server with register/append/drop lifecycles from
// four workers (each owning its own table names, so acknowledgement
// tracking is unambiguous) for roughly d, then SIGKILLs it from under
// them mid-flight.
func (h *crashHarness) churn(srv *serverProc, d time.Duration) {
	h.mu.Lock()
	h.inDark = make(map[string]bool)
	h.mu.Unlock()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("crash_w%d_t%d", w, k%3)
				if !h.register(srv, name, 2+k%5) {
					return
				}
				for a := 0; a < 2; a++ {
					if !h.append(srv, name, a) {
						return
					}
				}
				if k%2 == 0 {
					if !h.drop(srv, name) {
						return
					}
				}
			}
		}(w)
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
}

// mark records an op as in the dark before it is sent; ack clears it
// and books the acknowledged state. Anything still dark at kill time
// may or may not have landed, so verify only bounds it.
func (h *crashHarness) mark(name string) {
	h.mu.Lock()
	h.inDark[name] = true
	h.mu.Unlock()
}

func (h *crashHarness) ack(name string, st ackedState) {
	h.mu.Lock()
	delete(h.inDark, name)
	h.acked[name] = st
	if st.gen > h.maxGen {
		h.maxGen = st.gen
	}
	h.mu.Unlock()
}

type wireInfo struct {
	Name       string `json:"name"`
	Version    string `json:"version"`
	Generation uint64 `json:"generation"`
	Rows       int    `json:"rows"`
}

func (h *crashHarness) register(srv *serverProc, name string, rows int) bool {
	body := map[string]any{"name": name, "columns": []string{"Nation", "Year", "Games"}}
	var rr [][]string
	for i := 0; i < rows; i++ {
		rr = append(rr, []string{"nation" + strconv.Itoa(i%5), strconv.Itoa(1896 + 4*i), strconv.Itoa(i)})
	}
	body["rows"] = rr
	h.mark(name)
	var info wireInfo
	if !h.do(srv, http.MethodPost, "/v1/tables", body, http.StatusCreated, &info) {
		return false
	}
	h.ack(name, ackedState{present: true, version: info.Version, gen: info.Generation})
	return true
}

func (h *crashHarness) append(srv *serverProc, name string, k int) bool {
	body := map[string]any{"rows": [][]string{{"nation9", strconv.Itoa(2000 + k), strconv.Itoa(k)}}}
	h.mark(name)
	var info wireInfo
	if !h.do(srv, http.MethodPatch, "/v1/tables/"+name, body, http.StatusOK, &info) {
		return false
	}
	h.ack(name, ackedState{present: true, version: info.Version, gen: info.Generation})
	return true
}

func (h *crashHarness) drop(srv *serverProc, name string) bool {
	h.mark(name)
	var resp struct {
		Dropped wireInfo `json:"dropped"`
	}
	if !h.do(srv, http.MethodDelete, "/v1/tables/"+name, nil, http.StatusOK, &resp) {
		return false
	}
	h.ack(name, ackedState{present: false, gen: resp.Dropped.Generation})
	return true
}

// do sends one request; any transport error or unexpected status reads
// as "the kill landed" and stops the worker. A response only counts as
// an acknowledgement when it decoded cleanly with the wanted status.
func (h *crashHarness) do(srv *serverProc, method, path string, body any, wantStatus int, out any) bool {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			h.t.Errorf("marshal: %v", err)
			return false
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, srv.base+path, rd)
	if err != nil {
		h.t.Errorf("request: %v", err)
		return false
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		io.Copy(io.Discard, resp.Body)
		return false
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return false
		}
	}
	return true
}

// verify checks the recovered catalog against every acknowledged
// mutation. Tables with an op in the dark at kill time are only
// bounded (the op may or may not have landed); everything else must
// match exactly.
func (h *crashHarness) verify(srv *serverProc) {
	h.t.Helper()
	var listing struct {
		Tables []wireInfo `json:"tables"`
	}
	if !h.do(srv, http.MethodGet, "/v1/tables", nil, http.StatusOK, &listing) {
		h.t.Fatal("listing tables after recovery failed")
	}
	got := make(map[string]wireInfo, len(listing.Tables))
	for _, ti := range listing.Tables {
		got[ti.Name] = ti
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for name, want := range h.acked {
		ti, present := got[name]
		if h.inDark[name] {
			// The in-flight op may have landed: accept the acked state or
			// any strictly later one, but never a regression.
			if present && ti.Generation < want.gen {
				h.t.Errorf("table %s recovered at generation %d, below acknowledged %d", name, ti.Generation, want.gen)
			}
			continue
		}
		if want.present {
			if !present {
				h.t.Errorf("table %s lost: last acknowledged mutation (gen %d, version %s) not recovered", name, want.gen, want.version)
				continue
			}
			if ti.Version != want.version || ti.Generation != want.gen {
				h.t.Errorf("table %s recovered as (gen %d, version %s), acknowledged (gen %d, version %s)",
					name, ti.Generation, ti.Version, want.gen, want.version)
			}
		} else if present {
			h.t.Errorf("table %s resurrected after acknowledged drop (recovered gen %d)", name, ti.Generation)
		}
	}
	var stats map[string]any
	if !h.do(srv, http.MethodGet, "/v1/stats", nil, http.StatusOK, &stats) {
		h.t.Fatal("reading stats after recovery failed")
	}
	if g, ok := stats["store_generation"].(float64); !ok || uint64(g) < h.maxGen {
		h.t.Errorf("recovered store generation %v below highest acknowledged %d", stats["store_generation"], h.maxGen)
	}
}
