package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"nlexplain"
)

// driveTraffic sends one of everything so every latency histogram and
// cache counter has data behind it.
func driveTraffic(t *testing.T, ts *httptest.Server) {
	t.Helper()
	registerOlympics(t, ts)
	for _, req := range []struct {
		path string
		body map[string]string
	}{
		{"/v1/explain", map[string]string{"table": "olympics", "query": "count(Country.Greece)"}},
		{"/v1/answer", map[string]string{"table": "olympics", "query": "max(R[Year].Record)"}},
		{"/v1/parse", map[string]string{"table": "olympics", "question": "how many nations in 1900"}},
	} {
		if resp, body := postJSON(t, ts.URL+req.path, req.body); resp.StatusCode >= 500 {
			t.Fatalf("%s: status %d: %s", req.path, resp.StatusCode, body)
		}
	}
	// One guaranteed error, so the error counters are live too.
	postJSON(t, ts.URL+"/v1/explain", map[string]string{"table": "nope", "query": "count(Country.Greece)"})
}

// TestStatsShimKeys locks GET /v1/stats to the PR-5 wire shape modulo
// the documented changes: store_tables collapsed into tables (they
// always carried the same value), plus the additive zone-map skipping
// counters morsels_skipped/morsels_shortcut. testdata/stats_pr5.json
// is a real response captured from the pre-registry server.
func TestStatsShimKeys(t *testing.T) {
	recorded, err := os.ReadFile(filepath.Join("testdata", "stats_pr5.json"))
	if err != nil {
		t.Fatal(err)
	}
	var old map[string]any
	if err := json.Unmarshal(recorded, &old); err != nil {
		t.Fatal(err)
	}
	ts, _ := newTestServer(t)
	driveTraffic(t, ts)
	resp, body := getJSON(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var cur map[string]any
	if err := json.Unmarshal(body, &cur); err != nil {
		t.Fatal(err)
	}
	want := make([]string, 0, len(old))
	for k := range old {
		if k != "store_tables" {
			want = append(want, k)
		}
	}
	want = append(want, "morsels_skipped", "morsels_shortcut")
	got := make([]string, 0, len(cur))
	for k := range cur {
		got = append(got, k)
	}
	sort.Strings(want)
	sort.Strings(got)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("stats keys drifted:\n got: %v\nwant: %v", got, want)
	}
	// The shim must still serve live values, not zeros.
	if cur["executions"].(float64) < 1 || cur["errors"].(float64) < 1 || cur["tables"].(float64) != 1 {
		t.Errorf("stats values not live: %s", body)
	}
}

// TestMetricsExposition checks the acceptance floor for GET /metrics:
// well-formed Prometheus text with at least 30 distinct series names,
// including the explain and answer latency histograms and the
// per-endpoint HTTP series.
func TestMetricsExposition(t *testing.T) {
	ts, _ := newTestServer(t)
	driveTraffic(t, ts)
	resp, body := getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content-type = %q", ct)
	}
	names := make(map[string]bool)
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		names[name] = true
	}
	if len(names) < 30 {
		t.Errorf("only %d distinct series names, want >= 30", len(names))
	}
	for _, want := range []string{
		"engine_explain_latency_seconds_bucket",
		"engine_explain_latency_seconds_count",
		"engine_answer_latency_seconds_bucket",
		"engine_admission_wait_seconds_count",
		"engine_cache_result_hits",
		"engine_executions",
		"store_bytes",
		"store_tables",
		"server_http_requests",
		"server_http_explain_latency_seconds_bucket",
		"server_http_explain_requests",
		"server_http_explain_errors",
	} {
		if !names[want] {
			t.Errorf("series %q missing from /metrics", want)
		}
	}
}

// TestErrorEnvelope locks the error shape: a stable machine code plus
// message under "error", and nothing else — in particular the removed
// "error_string" mirror must not reappear.
func TestErrorEnvelope(t *testing.T) {
	ts, _ := newTestServer(t)
	registerOlympics(t, ts)
	cases := []struct {
		name   string
		method string
		path   string
		body   any
		status int
		code   string
	}{
		{"unknown table resource", http.MethodGet, "/v1/tables/nope", nil, http.StatusNotFound, "unknown_table"},
		{"unknown table explain", http.MethodPost, "/v1/explain", map[string]string{"table": "nope", "query": "count(Country.Greece)"}, http.StatusNotFound, "unknown_table"},
		{"bad query", http.MethodPost, "/v1/explain", map[string]string{"table": "olympics", "query": "not a query"}, http.StatusBadRequest, "bad_request"},
		{"malformed body", http.MethodPost, "/v1/answer", "not an object", http.StatusBadRequest, "bad_request"},
		{"drop unknown", http.MethodDelete, "/v1/tables/nope", nil, http.StatusNotFound, "unknown_table"},
	}
	for _, tc := range cases {
		resp, body := doJSON(t, tc.method, ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &env); err != nil {
			t.Errorf("%s: %v: %s", tc.name, err, body)
			continue
		}
		if env.Error.Code != tc.code {
			t.Errorf("%s: code = %q, want %q", tc.name, env.Error.Code, tc.code)
		}
		if env.Error.Message == "" {
			t.Errorf("%s: empty error.message", tc.name)
		}
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(body, &raw); err == nil {
			if _, ok := raw["error_string"]; ok {
				t.Errorf("%s: removed error_string field present: %s", tc.name, body)
			}
		}
	}
}

// TestTableResource covers GET /v1/tables/{name} and the list endpoint
// serving the same per-table objects.
func TestTableResource(t *testing.T) {
	ts, _ := newTestServer(t)
	registerOlympics(t, ts)
	resp, body := getJSON(t, ts.URL+"/v1/tables/olympics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var det nlexplain.TableDetail
	if err := json.Unmarshal(body, &det); err != nil {
		t.Fatal(err)
	}
	if det.Name != "olympics" || det.Rows != 6 || det.Cols != 4 {
		t.Errorf("detail = %+v", det)
	}
	if len(det.Columns) != 4 || det.Columns[0] != "Year" {
		t.Errorf("columns = %v", det.Columns)
	}
	if det.Version == "" || det.Generation == 0 || det.Bytes <= 0 {
		t.Errorf("version/generation/bytes not populated: %+v", det)
	}

	resp, body = getJSON(t, ts.URL+"/v1/tables")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", resp.StatusCode)
	}
	var list struct {
		Tables []nlexplain.TableDetail `json:"tables"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Tables) != 1 {
		t.Fatalf("list = %+v", list.Tables)
	}
	if got := list.Tables[0]; got.Name != det.Name || got.Bytes != det.Bytes || len(got.Columns) != 4 {
		t.Errorf("list entry %+v != detail %+v", got, det)
	}
}

// TestPprofGating: the pprof surface only mounts behind -pprof.
func TestPprofGating(t *testing.T) {
	e := nlexplain.NewEngine(nlexplain.EngineOptions{Workers: 2})
	off := httptest.NewServer(newMux(e, muxConfig{}))
	defer off.Close()
	if resp, _ := getJSON(t, off.URL+"/debug/pprof/"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", resp.StatusCode)
	}
	e2 := nlexplain.NewEngine(nlexplain.EngineOptions{Workers: 2})
	on := httptest.NewServer(newMux(e2, muxConfig{pprof: true}))
	defer on.Close()
	if resp, _ := getJSON(t, on.URL+"/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: status %d, want 200", resp.StatusCode)
	}
}
