package main

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"nlexplain"
	"nlexplain/internal/workload"
)

// TestAnswerEndpoint covers the answer-only fast path on the wire:
// denotation without provenance, cache marking on repeat, and error
// mapping.
func TestAnswerEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	registerOlympics(t, ts)

	req := map[string]string{"table": "olympics", "query": "max(R[Year].Country.Greece)"}
	resp, body := postJSON(t, ts.URL+"/v1/answer", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got struct {
		Table  string `json:"table"`
		Query  string `json:"query"`
		Result string `json:"result"`
		Cached bool   `json:"cached"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	if got.Result != "2004" {
		t.Fatalf("answer = %q, want 2004 (body %s)", got.Result, body)
	}
	if got.Cached {
		t.Fatal("first answer must not be marked cached")
	}
	if strings.Contains(string(body), "provenance") {
		t.Fatalf("answer endpoint must not carry provenance: %s", body)
	}

	resp, body = postJSON(t, ts.URL+"/v1/answer", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Cached {
		t.Fatal("repeat answer must be served from the answer cache")
	}

	if resp, _ := postJSON(t, ts.URL+"/v1/answer", map[string]string{"table": "nope", "query": "count(Record)"}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown table status %d, want 404", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/answer", map[string]string{"table": "olympics", "query": "max("}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed query status %d, want 400", resp.StatusCode)
	}
}

// TestWorkloadHTTPTarget drives the full workload harness against a
// live httptest wtq-server: the same mixed traffic CI drives in-process
// must flow over the wire, and /v1/stats must round-trip the engine
// stats schema the report embeds.
func TestWorkloadHTTPTarget(t *testing.T) {
	ts, _ := newTestServer(t)

	mix, ok := workload.MixByName("mixed")
	if !ok {
		t.Fatal("mixed mix missing")
	}
	corpus, ops := workload.Generate(1, mix, 64)
	tgt := workload.NewHTTPTarget(ts.URL)
	defer tgt.Close()

	rep, err := workload.Run(context.Background(), tgt, corpus, ops, workload.Options{
		Workers: 4, MaxOps: 128, Seed: 1, MixName: "mixed",
	})
	if err != nil {
		t.Fatalf("Run over HTTP: %v", err)
	}
	if rep.TotalOps != 128 {
		t.Fatalf("TotalOps = %d, want 128", rep.TotalOps)
	}
	if rep.Counts[workload.ClassTransport] != 0 {
		t.Fatalf("transport errors against httptest server: %v", rep.Counts)
	}
	if rep.Counts[workload.ClassInternal] != 0 {
		t.Fatalf("internal errors: %v", rep.Counts)
	}
	// The mixed stream carries deliberate malformed/unknown queries;
	// everything else must succeed.
	if rep.Counts[workload.ClassOK] == 0 || rep.Counts[workload.ClassOK]+rep.Errors != rep.TotalOps {
		t.Fatalf("unexpected class distribution: %v", rep.Counts)
	}
	if rep.Engine == nil || rep.Engine.Executions == 0 {
		t.Fatalf("engine stats not scraped over /v1/stats: %+v", rep.Engine)
	}
	if rep.CacheHitRatio <= 0 {
		t.Fatalf("cache hit ratio not derived over HTTP: %v", rep.CacheHitRatio)
	}
	if rep.Target != ts.URL {
		t.Fatalf("report target = %q, want %q", rep.Target, ts.URL)
	}
}

// TestWorkloadHTTPMatchesInProc pins the two targets to the same
// generated op stream and requires identical deterministic outcome
// classes (ok vs client error) op for op.
func TestWorkloadHTTPMatchesInProc(t *testing.T) {
	ts, _ := newTestServer(t)
	mix, _ := workload.MixByName("explain")
	corpus, ops := workload.Generate(3, mix, 48)

	httpTgt := workload.NewHTTPTarget(ts.URL)
	defer httpTgt.Close()
	inproc := workload.NewInProc(nlexplain.EngineOptions{Workers: 2})
	if err := httpTgt.RegisterTables(corpus.Tables); err != nil {
		t.Fatal(err)
	}
	if err := inproc.RegisterTables(corpus.Tables); err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		a := inproc.Do(context.Background(), op)
		b := httpTgt.Do(context.Background(), op)
		if a.Class != b.Class {
			t.Fatalf("op %d (%s %q): inproc=%s http=%s", i, op.Family, op.Query, a.Class, b.Class)
		}
	}
}
