package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"nlexplain"
)

// TestTableLifecycleEndpoints walks the full table lifecycle on the
// wire: register, query, PATCH-append (version and generation move,
// stale cache purged), DELETE, and 404s afterwards.
func TestTableLifecycleEndpoints(t *testing.T) {
	ts, e := newTestServer(t)
	registerOlympics(t, ts)

	explain := func() (string, string) {
		resp, body := postJSON(t, ts.URL+"/v1/explain", map[string]string{"table": "olympics", "query": "count(Record)"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("explain: status %d: %s", resp.StatusCode, body)
		}
		var got struct {
			Version string `json:"version"`
			Result  string `json:"result"`
		}
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		return got.Version, got.Result
	}
	v1, res := explain()
	if res != "6" {
		t.Fatalf("pre-append result %q, want 6", res)
	}

	resp, body := doJSON(t, http.MethodPatch, ts.URL+"/v1/tables/olympics", map[string]any{
		"rows": [][]string{{"2016", "Rio", "Brazil", "207"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch: status %d: %s", resp.StatusCode, body)
	}
	var info nlexplain.TableInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Rows != 7 || info.Version == v1 || info.Generation == 0 {
		t.Fatalf("patch info = %+v (old version %s)", info, v1)
	}
	if s := e.Stats(); s.ResultCache != 0 {
		t.Fatalf("result cache holds %d entries after PATCH, want 0 (stale purge)", s.ResultCache)
	}
	v2, res := explain()
	if res != "7" || v2 != info.Version {
		t.Fatalf("post-append explain = (%s, %s), want (%s, 7)", v2, res, info.Version)
	}

	// PATCH error paths: unknown table, ragged rows, empty rows.
	if resp, _ := doJSON(t, http.MethodPatch, ts.URL+"/v1/tables/nope", map[string]any{"rows": [][]string{{"a", "b", "c", "d"}}}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("patch unknown table: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := doJSON(t, http.MethodPatch, ts.URL+"/v1/tables/olympics", map[string]any{"rows": [][]string{{"short"}}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("patch ragged rows: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := doJSON(t, http.MethodPatch, ts.URL+"/v1/tables/olympics", map[string]any{"rows": [][]string{}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("patch empty rows: status %d, want 400", resp.StatusCode)
	}

	// DELETE, then everything 404s.
	resp, body = doJSON(t, http.MethodDelete, ts.URL+"/v1/tables/olympics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d: %s", resp.StatusCode, body)
	}
	var dropped struct {
		Dropped nlexplain.TableInfo `json:"dropped"`
	}
	if err := json.Unmarshal(body, &dropped); err != nil {
		t.Fatal(err)
	}
	if dropped.Dropped.Name != "olympics" {
		t.Fatalf("dropped = %+v", dropped)
	}
	if resp, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/tables/olympics", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("second delete: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/explain", map[string]string{"table": "olympics", "query": "count(Record)"}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("explain after delete: status %d, want 404", resp.StatusCode)
	}
}

// TestRegisterTablePayloadCap checks the MaxBytesReader hardening: a
// table payload over the configured cap draws 413 with the JSON error
// body, on both POST and PATCH.
func TestRegisterTablePayloadCap(t *testing.T) {
	ts, _ := newTestServerCapped(t, 1024)
	registerOlympicsSmall := func() {
		resp, body := postJSON(t, ts.URL+"/v1/tables", map[string]any{
			"name":    "small",
			"columns": []string{"A"},
			"rows":    [][]string{{"1"}},
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("small register under cap: status %d: %s", resp.StatusCode, body)
		}
	}
	registerOlympicsSmall()

	big := strings.Repeat("x", 4096)
	resp, body := postJSON(t, ts.URL+"/v1/tables", map[string]any{
		"name":    "big",
		"columns": []string{"A"},
		"rows":    [][]string{{big}},
	})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize register: status %d, want 413 (%s)", resp.StatusCode, body)
	}
	var errBody struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &errBody); err != nil || errBody.Error.Message == "" {
		t.Fatalf("413 body is not the JSON error shape: %s (%v)", body, err)
	}
	if errBody.Error.Code != "too_large" {
		t.Fatalf("413 code = %q, want too_large", errBody.Error.Code)
	}

	if resp, _ := doJSON(t, http.MethodPatch, ts.URL+"/v1/tables/small", map[string]any{"rows": [][]string{{big}}}); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize patch: status %d, want 413", resp.StatusCode)
	}
}

// TestRegisterTableBadPayloads covers the 400 paths the register
// endpoint must reject cleanly: duplicate columns and ragged rows, in
// both the rows and CSV payload forms.
func TestRegisterTableBadPayloads(t *testing.T) {
	ts, _ := newTestServer(t)

	cases := []struct {
		name    string
		payload map[string]any
	}{
		{"dup columns", map[string]any{"name": "t", "columns": []string{"A", "a"}, "rows": [][]string{{"1", "2"}}}},
		{"ragged rows", map[string]any{"name": "t", "columns": []string{"A", "B"}, "rows": [][]string{{"1"}}}},
		{"dup csv columns", map[string]any{"name": "t", "csv": "A,a\n1,2\n"}},
		{"ragged csv", map[string]any{"name": "t", "csv": "A,B\n1\n"}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/tables", tc.payload)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
			continue
		}
		var errBody struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &errBody); err != nil || errBody.Error.Message == "" {
			t.Errorf("%s: body is not the JSON error shape: %s", tc.name, body)
		} else if errBody.Error.Code != "bad_request" {
			t.Errorf("%s: code = %q, want bad_request", tc.name, errBody.Error.Code)
		}
	}
}
