// Command wtq-server serves query explanations over HTTP/JSON — the
// deployment interface of Section 6.3 as a service, backed by the
// concurrent explanation engine (table registry, AST/result caches,
// bounded worker pool).
//
// Endpoints:
//
//	POST   /v1/tables        register a table {name, columns, rows} or {name, csv}
//	GET    /v1/tables        list registered tables (full per-table objects)
//	GET    /v1/tables/{name} one table: schema, rows, version, generation, bytes
//	PATCH  /v1/tables/{name} append rows {rows} to a registered table
//	DELETE /v1/tables/{name} drop a table
//	POST   /v1/explain       {table, query} -> utterance + highlights + provenance
//	POST   /v1/explain/batch {queries: [{table, query}...], timeout_ms} -> in-order results
//	POST   /v1/answer        {table, query} -> denotation only (answer-only fast path)
//	POST   /v1/parse         {table, question, top_k} -> ranked candidate queries
//	GET    /v1/healthz       liveness + table count; 503 {"status":"degraded"} while read-only
//	GET    /v1/stats         flat engine counters (compatibility shim over the registry)
//	GET    /metrics          Prometheus text exposition of the full metric registry
//	GET    /debug/pprof/*    net/http/pprof profiles (only with -pprof)
//
// Every non-2xx response carries the unified error envelope
//
//	{"error": {"code": "<machine_code>", "message": "..."}}
//
// with stable codes: bad_request, unknown_table, too_large,
// deadline_exceeded, canceled, overloaded, unavailable, internal. (The
// deprecated flat "error_string" mirror announced one release ago has
// been dropped; read error.code/error.message.)
//
// Observability: every endpoint is instrumented with
// server.http.<endpoint>.{requests,errors,latency.seconds} series on
// the engine's metric registry, which GET /metrics serves alongside
// the engine.* pipeline counters/histograms and store.* gauges.
// GET /v1/stats remains as a flat JSON shim rendered from the same
// registry (note: its former duplicate "store_tables" field collapsed
// into "tables").
//
// Table mutations (register over an existing name, PATCH, DELETE) bump
// the store generation and synchronously invalidate every cached
// result of the displaced version; in-flight queries keep the snapshot
// they pinned. Table payload endpoints are capped by -max-table-bytes
// (default 8 MiB) and reply 413 with code "too_large" beyond it.
//
// Durability: with -data-dir the store writes every catalog mutation
// to a CRC-checked write-ahead log (group-committed within
// -wal-sync-window) and periodically checkpoints tables into immutable
// columnar segment files (-checkpoint-interval / -checkpoint-bytes).
// On restart the server loads the last checkpoint, replays the WAL
// tail, and resumes at the recovered generation; kill -9 loses at most
// the unsynced group-commit window. SIGINT/SIGTERM shut down
// gracefully, flushing and fsyncing the log. Without -data-dir the
// store is purely in-memory, as before.
//
// Fault tolerance: a durability fault (failed WAL write or fsync) does
// not take the node down. The store seals the damaged log and enters
// degraded read-only mode — reads keep serving from the in-memory
// snapshots, mutations fail fast with 503 code "unavailable" and a
// Retry-After header, /v1/healthz flips to 503 {"status":"degraded",
// "reason":...} so load balancers drain the node, and a background
// recovery loop retries with capped exponential backoff until a fresh
// log verifies durable, at which point everything returns to normal.
// Watch store.degraded, store.faults.durability and
// store.recovery.{attempts,successes} on GET /metrics.
//
// Run `wtq-server -demo` to start with the paper's Figure 1 olympics
// table pre-registered; see examples/server for a curl transcript.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"nlexplain"
	"nlexplain/internal/metric"
)

// defaultMaxTableBytes caps table payload bodies (POST/PATCH
// /v1/tables) unless -max-table-bytes overrides it.
const defaultMaxTableBytes = 8 << 20

// server wires the engine to HTTP handlers.
type server struct {
	engine *nlexplain.Engine
	// maxTableBytes bounds table payload request bodies; beyond it the
	// server replies 413 with a JSON error body.
	maxTableBytes int64
	// httpReg is the "server.http" sub-registry of the engine's metric
	// root; route() hangs per-endpoint series off it.
	httpReg *metric.Registry
	// requests is the service-wide request rate across all endpoints.
	requests *metric.Rate
}

// muxConfig configures newMux beyond the engine itself.
type muxConfig struct {
	maxTableBytes int64
	// pprof mounts net/http/pprof under /debug/pprof/ when set. Off by
	// default: profiles expose internals and cost CPU, so production
	// operators opt in with the -pprof flag.
	pprof bool
}

func newMux(e *nlexplain.Engine, cfg muxConfig) *http.ServeMux {
	if cfg.maxTableBytes <= 0 {
		cfg.maxTableBytes = defaultMaxTableBytes
	}
	reg := e.Metrics()
	httpReg := reg.Sub("server.http")
	s := &server{
		engine:        e,
		maxTableBytes: cfg.maxTableBytes,
		httpReg:       httpReg,
		requests:      httpReg.Rate("requests", "HTTP requests across all endpoints"),
	}
	mux := http.NewServeMux()
	s.route(mux, "POST /v1/tables", "tables_register", s.handleRegisterTable)
	s.route(mux, "GET /v1/tables", "tables_list", s.handleListTables)
	s.route(mux, "GET /v1/tables/{name}", "tables_get", s.handleGetTable)
	s.route(mux, "PATCH /v1/tables/{name}", "tables_append", s.handleAppendRows)
	s.route(mux, "DELETE /v1/tables/{name}", "tables_drop", s.handleDropTable)
	s.route(mux, "POST /v1/explain", "explain", s.handleExplain)
	s.route(mux, "POST /v1/explain/batch", "explain_batch", s.handleExplainBatch)
	s.route(mux, "POST /v1/answer", "answer", s.handleAnswer)
	s.route(mux, "POST /v1/parse", "parse", s.handleParse)
	s.route(mux, "GET /v1/healthz", "healthz", s.handleHealthz)
	s.route(mux, "GET /v1/stats", "stats", s.handleStats)
	s.route(mux, "GET /metrics", "metrics", s.handleMetrics)
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusWriter captures the response status for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// route mounts a handler with per-endpoint observability: a request
// counter, an error counter (non-2xx responses) and a latency
// histogram under server.http.<name>.*, plus the service-wide rate.
func (s *server) route(mux *http.ServeMux, pattern, name string, h http.HandlerFunc) {
	r := s.httpReg.Sub(name)
	reqs := r.Counter("requests", "requests to "+pattern)
	errs := r.Counter("errors", "non-2xx responses from "+pattern)
	lat := r.LatencyHistogram("latency.seconds", "response latency of "+pattern)
	mux.HandleFunc(pattern, func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		s.requests.Mark()
		reqs.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, req)
		if sw.status >= 300 {
			errs.Inc()
		}
		lat.RecordDuration(time.Since(start))
	})
}

// encBuf pairs a reusable buffer with the encoder bound to it; the
// pool recycles both across requests, so steady-state responses
// allocate neither an encoder nor a fresh backing array.
type encBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

// encBufMaxRetained caps the buffer size the pool keeps: a rare huge
// response (a full table dump) should not pin megabytes forever.
const encBufMaxRetained = 1 << 20

var encPool = sync.Pool{New: func() any {
	e := new(encBuf)
	e.enc = json.NewEncoder(&e.buf)
	e.enc.SetIndent("", "  ")
	return e
}}

func writeJSON(w http.ResponseWriter, status int, v any) {
	e := encPool.Get().(*encBuf)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		// Nothing was written yet, so the client still gets a clean
		// JSON error response instead of a torn body. (errorBody always
		// marshals, so this cannot recurse.)
		encPool.Put(e)
		log.Printf("encoding response: %v", err)
		writeError(w, http.StatusInternalServerError, codeInternal, "internal server error")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(e.buf.Bytes()); err != nil {
		log.Printf("writing response: %v", err)
	}
	if e.buf.Cap() <= encBufMaxRetained {
		encPool.Put(e)
	}
}

// Stable machine-readable error codes of the unified error envelope.
// Codes are part of the API contract: clients branch on them, so they
// never change meaning or disappear.
const (
	codeBadRequest       = "bad_request"
	codeUnknownTable     = "unknown_table"
	codeTooLarge         = "too_large"
	codeDeadlineExceeded = "deadline_exceeded"
	codeCanceled         = "canceled"
	codeOverloaded       = "overloaded"
	codeInternal         = "internal"
	codeUnavailable      = "unavailable"
)

// errorInfo is the structured error of the unified envelope.
type errorInfo struct {
	// Code is a stable machine-readable class (see the code* constants).
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// errorBody is the response body of every non-2xx reply. (The
// deprecated "error_string" mirror of the pre-envelope flat shape was
// dropped after its announced one-release grace period.)
type errorBody struct {
	Error errorInfo `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: errorInfo{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// errStatus maps a pipeline error to an HTTP status: missing tables
// are 404, deadline hits are 504, client disconnects are 499 (the
// nginx convention; the client is gone and will not read it anyway),
// everything else is the client's 400 (bad query, bad table payload).
func errStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	case errors.Is(err, nlexplain.ErrUnknownTable):
		return http.StatusNotFound
	case errors.Is(err, nlexplain.ErrUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, nlexplain.ErrInternal):
		return http.StatusInternalServerError
	case errors.Is(err, nlexplain.ErrOverloaded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// errCode maps a pipeline error to its stable envelope code, the
// machine-readable twin of errStatus.
func errCode(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return codeDeadlineExceeded
	case errors.Is(err, context.Canceled):
		return codeCanceled
	case errors.Is(err, nlexplain.ErrUnknownTable):
		return codeUnknownTable
	case errors.Is(err, nlexplain.ErrUnavailable):
		return codeUnavailable
	case errors.Is(err, nlexplain.ErrInternal):
		return codeInternal
	case errors.Is(err, nlexplain.ErrOverloaded):
		return codeOverloaded
	default:
		return codeBadRequest
	}
}

// errMessage is the client-facing text for a pipeline error. Contained
// panics (ErrInternal) are logged server-side and replaced with a
// generic message so internal state never reaches the response body.
func errMessage(err error) string {
	if errors.Is(err, nlexplain.ErrInternal) {
		log.Printf("internal pipeline error: %v", err)
		return "internal server error"
	}
	return err.Error()
}

// writePipelineError books a pipeline failure onto the wire with its
// mapped status, stable code and sanitized message. Unavailable
// rejections (degraded store) carry a Retry-After so well-behaved
// clients and load balancers pace their retries.
func writePipelineError(w http.ResponseWriter, err error) {
	if errors.Is(err, nlexplain.ErrUnavailable) {
		w.Header().Set("Retry-After", "1")
	}
	writeError(w, errStatus(err), errCode(err), "%s", errMessage(err))
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	return decodeCapped(w, r, v, 16<<20)
}

// decodeCapped decodes a JSON body bounded by limit bytes. An
// over-limit body maps to 413 with code "too_large", not 400: the
// request may be well-formed, the server just refuses to buffer it.
func decodeCapped(w http.ResponseWriter, r *http.Request, v any, limit int64) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, codeTooLarge, "request body exceeds %d bytes", maxErr.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, codeBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

type registerTableRequest struct {
	Name    string     `json:"name"`
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	// CSV is an alternative payload: a full CSV document whose first
	// record is the header.
	CSV string `json:"csv,omitempty"`
}

func (s *server) handleRegisterTable(w http.ResponseWriter, r *http.Request) {
	var req registerTableRequest
	if !decodeCapped(w, r, &req, s.maxTableBytes) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, codeBadRequest, "missing table name")
		return
	}
	var (
		info nlexplain.TableInfo
		err  error
	)
	if req.CSV != "" {
		var t *nlexplain.Table
		t, err = nlexplain.TableFromCSV(req.Name, strings.NewReader(req.CSV))
		if err == nil {
			info, err = s.engine.RegisterTable(t)
		}
	} else {
		info, err = s.engine.RegisterRaw(req.Name, req.Columns, req.Rows)
	}
	if err != nil {
		// A WAL write failure or degraded-mode rejection is a server
		// fault, not a payload problem: route it through the pipeline
		// mapping (503/unavailable or 500/internal) instead of blaming
		// the client with a 400.
		if errors.Is(err, nlexplain.ErrInternal) || errors.Is(err, nlexplain.ErrUnavailable) {
			writePipelineError(w, err)
			return
		}
		writeError(w, http.StatusBadRequest, codeBadRequest, "registering table: %v", err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// handleListTables is GET /v1/tables: the same full per-table objects
// GET /v1/tables/{name} serves, sorted by name.
func (s *server) handleListTables(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tables": s.engine.TableDetails()})
}

// handleGetTable is GET /v1/tables/{name}: the table resource (schema,
// row count, content-hash version, generation, resident bytes), making
// the table endpoint symmetric across GET/PATCH/DELETE.
func (s *server) handleGetTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	detail, ok := s.engine.TableDetail(name)
	if !ok {
		writeError(w, http.StatusNotFound, codeUnknownTable, "unknown table: %q", name)
		return
	}
	writeJSON(w, http.StatusOK, detail)
}

type appendRowsRequest struct {
	Rows [][]string `json:"rows"`
}

// handleAppendRows is PATCH /v1/tables/{name}: append rows to a live
// table. The store installs a copy-on-write successor snapshot, bumps
// the generation and synchronously purges the old version's cached
// results; queries in flight keep the snapshot they pinned.
func (s *server) handleAppendRows(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req appendRowsRequest
	if !decodeCapped(w, r, &req, s.maxTableBytes) {
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, "no rows to append")
		return
	}
	info, err := s.engine.AppendRows(name, req.Rows)
	if err != nil {
		if errors.Is(err, nlexplain.ErrUnavailable) {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, errStatus(err), errCode(err), "appending to table: %s", errMessage(err))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleDropTable is DELETE /v1/tables/{name}: remove a table and
// synchronously invalidate its cached results.
func (s *server) handleDropTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	info, ok, err := s.engine.DropTable(name)
	if err != nil {
		writePipelineError(w, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, codeUnknownTable, "unknown table: %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"dropped": info})
}

type explainRequest struct {
	Table string `json:"table"`
	Query string `json:"query"`
}

type explainResponse struct {
	*nlexplain.EngineExplanation
	Cached bool `json:"cached"`
}

func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if !decode(w, r, &req) {
		return
	}
	ex, cached, err := s.engine.ExplainCached(r.Context(), req.Table, req.Query)
	if err != nil {
		writePipelineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, explainResponse{EngineExplanation: ex, Cached: cached})
}

type batchRequest struct {
	Queries []explainRequest `json:"queries"`
	// TimeoutMs bounds each query; 0 uses the engine default.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

type batchItem struct {
	Explanation *nlexplain.EngineExplanation `json:"explanation,omitempty"`
	Cached      bool                         `json:"cached"`
	Error       string                       `json:"error,omitempty"`
	// ErrorCode is the stable machine code of Error (same vocabulary as
	// the top-level error envelope).
	ErrorCode string `json:"error_code,omitempty"`
}

type batchResponse struct {
	Results []batchItem `json:"results"`
	Errors  int         `json:"errors"`
}

func (s *server) handleExplainBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, "empty batch")
		return
	}
	reqs := make([]nlexplain.ExplainRequest, len(req.Queries))
	for i, q := range req.Queries {
		reqs[i] = nlexplain.ExplainRequest{
			Table:   q.Table,
			Query:   q.Query,
			Timeout: time.Duration(req.TimeoutMs) * time.Millisecond,
		}
	}
	results := s.engine.ExplainBatch(r.Context(), reqs)
	resp := batchResponse{Results: make([]batchItem, len(results))}
	for i, res := range results {
		item := batchItem{Explanation: res.Explanation, Cached: res.Cached}
		if res.Err != nil {
			item.Error = errMessage(res.Err)
			item.ErrorCode = errCode(res.Err)
			resp.Errors++
		}
		resp.Results[i] = item
	}
	writeJSON(w, http.StatusOK, resp)
}

type answerResponse struct {
	*nlexplain.EngineAnswer
	Cached bool `json:"cached"`
}

// handleAnswer serves the answer-only fast path: the query's denotation
// without provenance, highlights or an utterance — the cheap endpoint
// load generators and gold-answer checkers should hit.
func (s *server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if !decode(w, r, &req) {
		return
	}
	ans, cached, err := s.engine.ExplainAnswer(r.Context(), req.Table, req.Query)
	if err != nil {
		writePipelineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, answerResponse{EngineAnswer: ans, Cached: cached})
}

type parseRequest struct {
	Table    string `json:"table"`
	Question string `json:"question"`
	TopK     int    `json:"top_k,omitempty"`
}

func (s *server) handleParse(w http.ResponseWriter, r *http.Request) {
	var req parseRequest
	if !decode(w, r, &req) {
		return
	}
	cands, err := s.engine.ParseQuestion(r.Context(), req.Table, req.Question, req.TopK)
	if err != nil {
		writePipelineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"question": req.Question, "candidates": cands})
}

// handleHealthz reports serving health. While the durable store is in
// degraded read-only mode it answers 503 with the episode's reason and
// a Retry-After, so load balancers drain the node until the background
// recovery loop lifts the degradation; reads still serve in between.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := s.engine.Health()
	if h.Status != "ok" {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": h.Status, "reason": h.Reason, "tables": len(s.engine.Tables()),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "tables": len(s.engine.Tables())})
}

// handleStats serves the flat counter shim, rendered from the same
// metric registry GET /metrics exposes.
func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

// handleMetrics serves the full hierarchical registry (engine.*,
// store.*, server.http.*) as Prometheus text exposition.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.engine.Metrics().WritePrometheus(w); err != nil {
		log.Printf("writing /metrics: %v", err)
	}
}

// demoTable registers the paper's Figure 1 olympics running example.
func demoTable(e *nlexplain.Engine) error {
	_, err := e.RegisterRaw("olympics",
		[]string{"Year", "City", "Country", "Nations"},
		[][]string{
			{"1896", "Athens", "Greece", "14"},
			{"1900", "Paris", "France", "24"},
			{"1904", "St. Louis", "USA", "12"},
			{"2004", "Athens", "Greece", "201"},
			{"2008", "Beijing", "China", "204"},
			{"2012", "London", "UK", "204"},
		})
	return err
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	execWorkers := flag.Int("exec-workers", 0, "morsel-parallel executor workers per query (0 = GOMAXPROCS, 1 = serial)")
	cacheSize := flag.Int("cache", 0, "LRU cache entries per cache (0 = default)")
	timeout := flag.Duration("timeout", 0, "per-query timeout (0 = default 10s)")
	storeBudget := flag.Int64("store-budget", 0, "table store byte budget; over it cold tables' derived indexes are evicted (0 = unlimited)")
	maxTableBytes := flag.Int64("max-table-bytes", defaultMaxTableBytes, "max table payload body size in bytes (413 beyond it)")
	dataDir := flag.String("data-dir", "", "durable data directory (WAL + checkpointed segments); empty = in-memory only")
	walSyncWindow := flag.Duration("wal-sync-window", 0, "WAL group-commit window (0 = default 2ms, negative = fsync every mutation)")
	checkpointInterval := flag.Duration("checkpoint-interval", 0, "checkpoint cadence (0 = default 30s, negative = size-triggered only)")
	checkpointBytes := flag.Int64("checkpoint-bytes", 0, "active WAL bytes that force an early checkpoint (0 = default 8 MiB, negative = off)")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	demo := flag.Bool("demo", false, "pre-register the olympics demo table")
	flag.Parse()

	e, err := nlexplain.OpenEngine(nlexplain.EngineOptions{
		Workers:            *workers,
		CacheSize:          *cacheSize,
		QueryTimeout:       *timeout,
		StoreByteBudget:    *storeBudget,
		ExecWorkers:        *execWorkers,
		DataDir:            *dataDir,
		WALSyncWindow:      *walSyncWindow,
		CheckpointInterval: *checkpointInterval,
		CheckpointBytes:    *checkpointBytes,
	})
	if err != nil {
		log.Fatalf("opening engine: %v", err)
	}
	if *demo {
		if err := demoTable(e); err != nil {
			log.Fatalf("registering demo table: %v", err)
		}
	}
	// Positional arguments are CSV files registered under their
	// basename (data/olympics.csv -> table "olympics").
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			log.Fatalf("opening %s: %v", path, err)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		t, err := nlexplain.TableFromCSV(name, f)
		f.Close()
		if err != nil {
			log.Fatalf("reading %s: %v", path, err)
		}
		info, err := e.RegisterTable(t)
		if err != nil {
			log.Fatalf("registering %s: %v", path, err)
		}
		log.Printf("registered table %q (%d rows, version %s)", info.Name, info.Rows, info.Version)
	}

	// Listen explicitly (rather than ListenAndServe) so "-addr :0" logs
	// the resolved port — the crash-recovery harness depends on it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Handler:           newMux(e, muxConfig{maxTableBytes: *maxTableBytes, pprof: *pprofFlag}),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if *pprofFlag {
		log.Printf("pprof enabled on %s/debug/pprof/", ln.Addr())
	}
	if *dataDir != "" {
		log.Printf("durable store in %s", *dataDir)
	}
	log.Printf("wtq-server listening on %s (%d tables)", ln.Addr(), len(e.Tables()))

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case sig := <-stop:
		log.Printf("received %s, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		cancel()
	}
	// Close flushes and fsyncs the WAL tail and stops the checkpointer,
	// so a clean shutdown restarts with an empty replay.
	if err := e.Close(); err != nil {
		log.Fatalf("closing engine: %v", err)
	}
}
